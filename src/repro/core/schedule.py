"""The schedule under construction: per-processor instruction/barrier streams.

A schedule for an ``n_pes``-processor barrier MIMD assigns every
instruction node of an :class:`~repro.ir.dag.InstructionDAG` to one
processor's *stream* -- an ordered list of instructions interleaved with
:class:`~repro.barriers.model.Barrier` objects.  Every stream begins with
the shared *initial barrier* ``b0`` spanning all processors (the machine
start, section 3.1); a barrier that spans several processors appears in
each of their streams.

From the streams the class derives, on demand and cached by a revision
counter:

* the **barrier dag** ``(B, <_b)`` with figure 13 region weights,
* its **dominator tree**,
* per-processor **completion intervals** and per-instruction global
  ``[min,max]`` start/finish intervals (fire time of the instruction's
  last preceding barrier plus the trailing region).

The scheduler (:mod:`repro.core.scheduler`) mutates the schedule through
:meth:`append_instruction`, :meth:`insert_barrier` and
:meth:`replace_barrier` (merging) only.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.barriers.dag import BarrierDag
from repro.barriers.dominators import DominatorTree
from repro.barriers.model import Barrier
from repro.timing import Interval, ZERO, interval_max
from repro.ir.dag import InstructionDAG, NodeId

__all__ = ["Item", "Schedule"]

#: A stream item: an instruction node id, or a Barrier object.
Item = Union[NodeId, Barrier]


class Schedule:
    """Mutable per-processor streams plus cached timing views."""

    def __init__(
        self, dag: InstructionDAG, n_pes: int, barrier_latency: int = 0
    ) -> None:
        if n_pes < 1:
            raise ValueError("n_pes must be >= 1")
        if barrier_latency < 0:
            raise ValueError("barrier_latency must be >= 0")
        self.dag = dag
        self.n_pes = n_pes
        #: Extra time units each non-initial barrier takes to release
        #: after its last arrival (0 = the paper's ideal hardware).
        self.barrier_latency = barrier_latency
        self.initial_barrier = Barrier(0, range(n_pes), is_initial=True)
        self._next_barrier_id = 1
        self.streams: list[list[Item]] = [
            [self.initial_barrier] for _ in range(n_pes)
        ]
        self._processor_of: dict[NodeId, int] = {}
        self.revision = 0
        self._bd_cache: tuple[int, BarrierDag] | None = None
        self._dom_cache: tuple[int, DominatorTree] | None = None
        self._fire_cache: tuple[int, dict[int, Interval]] | None = None
        self._hb_cache: (
            tuple[int, dict[tuple[str, object], list[tuple[str, object]]]] | None
        ) = None
        self._hbdesc_cache: tuple[int, dict[int, frozenset[int]]] | None = None

    # -- bookkeeping -----------------------------------------------------------

    def _bump(self) -> None:
        self.revision += 1

    def is_scheduled(self, node: NodeId) -> bool:
        return node in self._processor_of

    def processor_of(self, node: NodeId) -> int:
        return self._processor_of[node]

    @property
    def scheduled_nodes(self) -> tuple[NodeId, ...]:
        return tuple(self._processor_of)

    def position_of(self, node: NodeId) -> tuple[int, int]:
        """``(pe, index)`` of an instruction within its stream."""
        pe = self._processor_of[node]
        stream = self.streams[pe]
        for idx, item in enumerate(stream):
            if item == node and not isinstance(item, Barrier):
                return pe, idx
        raise AssertionError(f"node {node!r} missing from stream {pe}")

    def instructions_on(self, pe: int) -> list[NodeId]:
        return [it for it in self.streams[pe] if not isinstance(it, Barrier)]

    def last_instruction_on(self, pe: int) -> NodeId | None:
        for item in reversed(self.streams[pe]):
            if not isinstance(item, Barrier):
                return item
        return None

    def barriers(self, include_initial: bool = False) -> list[Barrier]:
        """Distinct barriers in the schedule, by id."""
        seen: dict[int, Barrier] = {}
        for stream in self.streams:
            for item in stream:
                if isinstance(item, Barrier):
                    seen.setdefault(item.id, item)
        out = [b for b in seen.values() if include_initial or not b.is_initial]
        out.sort(key=lambda b: b.id)
        return out

    @property
    def n_barriers(self) -> int:
        """Inserted barriers (the initial machine-start barrier excluded):
        the numerator of the paper's *Barrier Synchronization Fraction*."""
        return len(self.barriers(include_initial=False))

    def used_processors(self) -> int:
        """Processors with at least one instruction."""
        return sum(1 for pe in range(self.n_pes) if self.instructions_on(pe))

    # -- mutations ---------------------------------------------------------------

    def append_instruction(self, pe: int, node: NodeId) -> None:
        if node in self._processor_of:
            raise ValueError(f"node {node!r} already scheduled")
        from repro.ir.dag import ENTRY, EXIT  # local import avoids a cycle

        if node is ENTRY or node is EXIT:
            raise ValueError("dummy nodes are never scheduled")
        if node not in self.dag:
            raise ValueError(f"node {node!r} is not in the instruction DAG")
        self.streams[pe].append(node)
        self._processor_of[node] = pe
        self._bump()

    def insert_barrier(self, placements: dict[int, int]) -> Barrier:
        """Insert a new barrier before index ``placements[pe]`` in each
        participating processor's stream.  Indices refer to the streams as
        they are *before* the call."""
        if not placements:
            raise ValueError("a barrier needs at least one participant")
        barrier = Barrier(self._next_barrier_id, placements.keys())
        self._next_barrier_id += 1
        for pe, idx in placements.items():
            stream = self.streams[pe]
            if not 1 <= idx <= len(stream):
                raise ValueError(
                    f"barrier index {idx} out of range on PE {pe} "
                    f"(stream length {len(stream)}; index 0 is b0)"
                )
            stream.insert(idx, barrier)
        self._bump()
        return barrier

    def replace_barrier(self, old: Barrier, new: Barrier) -> None:
        """Substitute ``new`` for ``old`` in every stream (merging step).

        The caller is responsible for having called ``new.absorb(old)``
        first so participant bookkeeping stays consistent."""
        if old.is_initial:
            raise ValueError("the initial barrier is never merged away")
        for stream in self.streams:
            for idx, item in enumerate(stream):
                if isinstance(item, Barrier) and item is old:
                    stream[idx] = new
        self._bump()

    # -- re-binding (ε-hardening support) ---------------------------------------

    def with_dag(self, dag: InstructionDAG) -> "Schedule":
        """A deep copy of this schedule bound to a different latency table.

        ``dag`` must contain every scheduled node (same node ids, same
        edges -- typically an ε-inflated variant built by
        :func:`repro.faults.model.inflate_dag`).  Barrier objects are
        cloned, not shared: barriers are mutable (merging widens their
        participant sets), so insertions and merges performed on the copy
        must never leak back into this schedule.
        """
        missing = [n for n in self._processor_of if n not in dag]
        if missing:
            raise ValueError(
                f"target DAG is missing scheduled nodes: {missing[:5]}..."
            )
        clone = Schedule(dag, self.n_pes, self.barrier_latency)
        copies: dict[int, Barrier] = {}
        for old in (self.initial_barrier, *self.barriers()):
            copy = Barrier(old.id, old.participants, is_initial=old.is_initial)
            copy.merged_from = list(old.merged_from)
            copies[old.id] = copy
        clone.initial_barrier = copies[self.initial_barrier.id]
        clone.streams = [
            [copies[item.id] if isinstance(item, Barrier) else item for item in stream]
            for stream in self.streams
        ]
        clone._processor_of = dict(self._processor_of)
        clone._next_barrier_id = self._next_barrier_id
        clone._bump()
        return clone

    # -- stream navigation ----------------------------------------------------------

    def last_barrier_before(self, pe: int, idx: int) -> Barrier:
        """``LastBar``: the nearest barrier at a position ``< idx`` on ``pe``.
        Always exists because every stream starts with ``b0``."""
        stream = self.streams[pe]
        for k in range(min(idx, len(stream)) - 1, -1, -1):
            if isinstance(stream[k], Barrier):
                return stream[k]
        raise AssertionError("stream missing its initial barrier")

    def next_barrier_after(self, pe: int, idx: int) -> Barrier | None:
        """``NextBar``: the nearest barrier at a position ``> idx``, if any."""
        stream = self.streams[pe]
        for k in range(idx + 1, len(stream)):
            if isinstance(stream[k], Barrier):
                return stream[k]
        return None

    def barrier_position(self, barrier: Barrier, pe: int) -> int:
        stream = self.streams[pe]
        for idx, item in enumerate(stream):
            if isinstance(item, Barrier) and item is barrier:
                return idx
        raise ValueError(f"barrier {barrier!r} not on PE {pe}")

    def region_after(self, pe: int, barrier: Barrier) -> list[NodeId]:
        """Instructions on ``pe`` strictly after ``barrier`` up to the next
        barrier (or the end of the stream)."""
        stream = self.streams[pe]
        start = self.barrier_position(barrier, pe) + 1
        region: list[NodeId] = []
        for item in stream[start:]:
            if isinstance(item, Barrier):
                break
            region.append(item)
        return region

    # -- delta times (section 4.4.1 steps [3] and [4]) ----------------------------

    def delta_through(self, node: NodeId) -> Interval:
        """Region time from just after ``LastBar(node)`` up to *and
        including* ``node``: ``delta_max`` uses ``.hi``, ``delta_min``
        uses ``.lo``."""
        pe, idx = self.position_of(node)
        stream = self.streams[pe]
        total = ZERO
        for k in range(idx, -1, -1):
            item = stream[k]
            if isinstance(item, Barrier):
                break
            total = total + self.dag.latency(item)
        return total

    def delta_before(self, pe: int, idx: int) -> Interval:
        """Region time from just after the last barrier before ``idx`` up to
        but *excluding* the item at ``idx`` (the paper's
        ``delta(i-)`` quantities)."""
        stream = self.streams[pe]
        total = ZERO
        for k in range(min(idx, len(stream)) - 1, -1, -1):
            item = stream[k]
            if isinstance(item, Barrier):
                break
            total = total + self.dag.latency(item)
        return total

    # -- derived views, cached by revision ---------------------------------------------

    def barrier_dag(self) -> BarrierDag:
        if self._bd_cache is not None and self._bd_cache[0] == self.revision:
            return self._bd_cache[1]
        region: dict[tuple[int, int], Interval] = {}
        barriers: dict[int, Barrier] = {self.initial_barrier.id: self.initial_barrier}
        for stream in self.streams:
            prev: Barrier | None = None
            acc = ZERO
            for item in stream:
                if isinstance(item, Barrier):
                    barriers.setdefault(item.id, item)
                    if prev is not None:
                        key = (prev.id, item.id)
                        joined = region.get(key)
                        region[key] = acc if joined is None else joined.join(acc)
                    prev = item
                    acc = ZERO
                else:
                    acc = acc + self.dag.latency(item)
        dag = BarrierDag(
            barriers.values(), region, self.initial_barrier, self.barrier_latency
        )
        self._bd_cache = (self.revision, dag)
        return dag

    def dominator_tree(self) -> DominatorTree:
        if self._dom_cache is not None and self._dom_cache[0] == self.revision:
            return self._dom_cache[1]
        tree = DominatorTree(self.barrier_dag())
        self._dom_cache = (self.revision, tree)
        return tree

    def fire_times(self) -> dict[int, Interval]:
        if self._fire_cache is not None and self._fire_cache[0] == self.revision:
            return self._fire_cache[1]
        fire = self.barrier_dag().fire_times()
        self._fire_cache = (self.revision, fire)
        return fire

    # -- the combined happens-before graph H ------------------------------------------
    #
    # Nodes: every scheduled instruction and every barrier.  Edges: stream
    # adjacency (consecutive items on each processor, through barriers) and
    # every committed producer/consumer data edge.  H is the complete
    # "happens-before" relation the schedule promises; it must stay acyclic
    # at all times -- a barrier insertion or merge that would make H cyclic
    # would force some consumer before its producer, which no amount of
    # further barrier insertion can repair.

    def hb_successors(self) -> dict[tuple[str, object], list[tuple[str, object]]]:
        """Adjacency of H.  Keys are ``("n", node)`` / ``("b", barrier_id)``."""
        if self._hb_cache is not None and self._hb_cache[0] == self.revision:
            return self._hb_cache[1]
        succs: dict[tuple[str, object], list[tuple[str, object]]] = {}

        def key_of(item: Item) -> tuple[str, object]:
            if isinstance(item, Barrier):
                return ("b", item.id)
            return ("n", item)

        for stream in self.streams:
            prev_key: tuple[str, object] | None = None
            for item in stream:
                key = key_of(item)
                succs.setdefault(key, [])
                if prev_key is not None and key not in succs[prev_key]:
                    succs[prev_key].append(key)
                prev_key = key
        for g, i in self.dag.real_edges():
            if g in self._processor_of and i in self._processor_of:
                succs.setdefault(("n", g), []).append(("n", i))
        self._hb_cache = (self.revision, succs)
        return succs

    def hb_reachable(
        self, src: tuple[str, object], dst: tuple[str, object]
    ) -> bool:
        """True iff ``src`` happens-before ``dst`` (or they are equal)."""
        if src == dst:
            return True
        succs = self.hb_successors()
        seen = {src}
        stack = [src]
        while stack:
            for nxt in succs.get(stack.pop(), ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def hb_barrier_ordered(self, a: int, b: int) -> bool:
        """True iff barriers ``a`` and ``b`` are comparable in H."""
        if a == b:
            return True
        desc = self.hb_barrier_descendants()
        return b in desc[a] or a in desc[b]

    def hb_barrier_descendants(self) -> dict[int, frozenset[int]]:
        """For each barrier, the set of barrier ids it happens-before.

        Computed in a single reverse-topological sweep over H with integer
        bitsets (profiling showed per-barrier DFS dominating scheduling
        time on large blocks; this is the same answer in O(V + E) word
        operations).
        """
        if self._hbdesc_cache is not None and self._hbdesc_cache[0] == self.revision:
            return self._hbdesc_cache[1]
        succs = self.hb_successors()

        # Kahn topological order of H (acyclic by construction).
        in_deg: dict[tuple[str, object], int] = {k: 0 for k in succs}
        for outs in succs.values():
            for nxt in outs:
                in_deg[nxt] = in_deg.get(nxt, 0) + 1
        frontier = [k for k, d in in_deg.items() if d == 0]
        order: list[tuple[str, object]] = []
        while frontier:
            key = frontier.pop()
            order.append(key)
            for nxt in succs.get(key, ()):
                in_deg[nxt] -= 1
                if in_deg[nxt] == 0:
                    frontier.append(nxt)
        if len(order) != len(in_deg):
            raise AssertionError("happens-before graph H contains a cycle")

        barrier_ids = [b.id for b in self.barriers(include_initial=True)]
        bit_of = {bid: 1 << k for k, bid in enumerate(barrier_ids)}
        mask: dict[tuple[str, object], int] = {}
        for key in reversed(order):
            acc = 0
            for nxt in succs.get(key, ()):
                acc |= mask.get(nxt, 0)
                if nxt[0] == "b":
                    acc |= bit_of[nxt[1]]
            mask[key] = acc

        result: dict[int, frozenset[int]] = {}
        for bid in barrier_ids:
            bits = mask.get(("b", bid), 0)
            result[bid] = frozenset(
                other for other in barrier_ids if bits & bit_of[other]
            )
        self._hbdesc_cache = (self.revision, result)
        return result

    def insertion_creates_hb_cycle(self, placements: dict[int, int]) -> bool:
        """Would inserting a barrier at ``placements`` make H cyclic?

        The new barrier's H-predecessors are the items just before each
        insertion point and its successors the items at each point; a
        cycle appears iff some successor already reaches some predecessor.
        """

        def key_at(pe: int, idx: int) -> tuple[str, object] | None:
            stream = self.streams[pe]
            if 0 <= idx < len(stream):
                item = stream[idx]
                if isinstance(item, Barrier):
                    return ("b", item.id)
                return ("n", item)
            return None

        preds = [key_at(pe, idx - 1) for pe, idx in placements.items()]
        succs = [key_at(pe, idx) for pe, idx in placements.items()]
        for s in succs:
            if s is None:
                continue
            for p in preds:
                if p is None or p == s:
                    continue
                if self.hb_reachable(s, p):
                    return True
        return False

    # -- global timing queries --------------------------------------------------------

    def global_finish(self, node: NodeId) -> Interval:
        """``[min,max]`` finish time of ``node`` measured from machine start
        (conservative: via its last preceding barrier's fire time)."""
        pe, idx = self.position_of(node)
        last = self.last_barrier_before(pe, idx)
        return self.fire_times()[last.id] + self.delta_through(node)

    def global_start(self, node: NodeId) -> Interval:
        """``[min,max]`` start time of ``node`` from machine start."""
        pe, idx = self.position_of(node)
        last = self.last_barrier_before(pe, idx)
        return self.fire_times()[last.id] + self.delta_before(pe, idx)

    def completion(self, pe: int) -> Interval:
        """``[min,max]`` time at which processor ``pe`` finishes its stream."""
        stream = self.streams[pe]
        last_bar = self.last_barrier_before(pe, len(stream))
        trailing = self.delta_before(pe, len(stream))
        return self.fire_times()[last_bar.id] + trailing

    def makespan(self) -> Interval:
        """``[min,max]`` completion time of the whole schedule."""
        return interval_max(self.completion(pe) for pe in range(self.n_pes))

    # -- rendering -----------------------------------------------------------------------

    def render(self) -> str:
        """Text dump: one line per processor stream."""
        lines = []
        for pe, stream in enumerate(self.streams):
            parts = []
            for item in stream:
                if isinstance(item, Barrier):
                    parts.append(f"|b{item.id}|")
                else:
                    parts.append(str(item))
            lines.append(f"PE{pe}: " + " ".join(parts))
        return "\n".join(lines)

    def __iter__(self) -> Iterator[tuple[int, list[Item]]]:
        return iter(enumerate(self.streams))
