"""Corpus-level aggregation of scheduling results.

The paper's evaluation averages 100 synthetic benchmarks per parameter
point; these helpers reduce a batch of
:class:`~repro.core.scheduler.ScheduleResult` objects to the means (and
dispersion) that back every figure in section 5.  numpy is used for the
bulk reductions, per the HPC guides' advice to vectorize aggregation
rather than instruction-level logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.scheduler import ScheduleResult
from repro.metrics.fractions import SyncFractions, fractions_of
from repro.perf.timers import StageTimings

__all__ = [
    "FractionAggregate",
    "CorpusStats",
    "aggregate_fractions",
    "aggregate_results",
]


@dataclass(frozen=True, slots=True)
class FractionAggregate:
    """Mean / std / extremes of one fraction over a corpus."""

    mean: float
    std: float
    min: float
    max: float

    @staticmethod
    def of(values: Sequence[float]) -> "FractionAggregate":
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return FractionAggregate(0.0, 0.0, 0.0, 0.0)
        return FractionAggregate(
            float(arr.mean()),
            float(arr.std(ddof=0)),
            float(arr.min()),
            float(arr.max()),
        )

    def render(self) -> str:
        return f"{self.mean:6.1%} +/-{self.std:5.1%} [{self.min:5.1%},{self.max:5.1%}]"


@dataclass(frozen=True)
class CorpusStats:
    """Everything the section 5 experiments report for one parameter point."""

    n_benchmarks: int
    barrier: FractionAggregate
    serialized: FractionAggregate
    static: FractionAggregate
    no_runtime_sync: FractionAggregate
    mean_implied_syncs: float
    mean_barriers: float
    mean_merges: float
    mean_makespan_min: float
    mean_makespan_max: float
    mean_processors_used: float
    total_repairs: int
    secondary_fraction: float
    per_benchmark: tuple[SyncFractions, ...] = ()
    #: Per-stage wall-clock seconds for the run that produced these stats
    #: (attached by :func:`repro.experiments.sweeps.run_point`; ``None``
    #: when the caller did not collect timings).  Cache hits carry the
    #: timings of the *original* computing run.
    timings: StageTimings | None = None

    def render(self) -> str:
        text = (
            f"n={self.n_benchmarks:<4d} barrier {self.barrier.render()}  "
            f"serial {self.serialized.render()}  static {self.static.render()}"
        )
        if self.timings is not None:
            text += f"\n  timings: {self.timings.render()}"
        return text


def aggregate_fractions(fractions: Iterable[SyncFractions]) -> tuple[
    FractionAggregate, FractionAggregate, FractionAggregate, FractionAggregate
]:
    """(barrier, serialized, static, no-runtime-sync) aggregates."""
    fr = list(fractions)
    return (
        FractionAggregate.of([f.barrier for f in fr]),
        FractionAggregate.of([f.serialized for f in fr]),
        FractionAggregate.of([f.static for f in fr]),
        FractionAggregate.of([f.no_runtime_sync for f in fr]),
    )


def aggregate_results(results: Sequence[ScheduleResult]) -> CorpusStats:
    """Reduce a batch of schedules to one corpus-level statistics record."""
    fr = [fractions_of(r) for r in results]
    barrier, serialized, static, no_rt = aggregate_fractions(fr)
    n = len(results)
    if n == 0:
        return CorpusStats(
            0, barrier, serialized, static, no_rt,
            0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0, (),
        )
    secondary_total = sum(r.counts.secondary_resolutions for r in results)
    resolved_total = sum(
        r.counts.path_edges + r.counts.timing_edges + r.counts.barrier_edges
        for r in results
    )
    return CorpusStats(
        n_benchmarks=n,
        barrier=barrier,
        serialized=serialized,
        static=static,
        no_runtime_sync=no_rt,
        mean_implied_syncs=float(np.mean([r.counts.total_edges for r in results])),
        mean_barriers=float(np.mean([r.counts.barriers_final for r in results])),
        mean_merges=float(np.mean([r.counts.merges for r in results])),
        mean_makespan_min=float(np.mean([r.makespan.lo for r in results])),
        mean_makespan_max=float(np.mean([r.makespan.hi for r in results])),
        mean_processors_used=float(
            np.mean([r.schedule.used_processors() for r in results])
        ),
        total_repairs=sum(r.counts.repairs for r in results),
        secondary_fraction=(secondary_total / resolved_total) if resolved_total else 0.0,
        per_benchmark=tuple(fr),
    )
