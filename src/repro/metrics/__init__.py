"""Synchronization metrics and corpus statistics (paper section 3.1/5)."""

from repro.metrics.fractions import SyncFractions, fractions_of
from repro.metrics.robustness import (
    CaseRobustness,
    RobustnessPoint,
    aggregate_robustness,
)
from repro.metrics.stats import (
    CorpusStats,
    FractionAggregate,
    aggregate_fractions,
    aggregate_results,
)

__all__ = [
    "SyncFractions",
    "fractions_of",
    "CorpusStats",
    "FractionAggregate",
    "aggregate_fractions",
    "aggregate_results",
    "CaseRobustness",
    "RobustnessPoint",
    "aggregate_robustness",
]
