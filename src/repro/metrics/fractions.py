"""The three synchronization fractions of paper section 3.1.

Given a schedule's :class:`~repro.core.scheduler.SyncCounts`:

*Total Implied Synchronizations*
    The number of edges in the instruction DAG; each edge is one
    producer/consumer synchronization a conventional MIMD would perform
    at run time.

*Barrier Synchronization Fraction*
    Barriers in the schedule / total implied synchronizations.  Note the
    numerator counts **barriers**, not barrier-triggering edges: after
    SBM merging one barrier may stand in for several edges, which is why
    the paper reports merging *increases* the static fraction.

*Serialized Synchronization Fraction*
    Edges whose consumer landed on the producer's processor / total.

*Static Scheduling Fraction*
    Whatever remains -- synchronizations discharged at compile time by
    barrier-relative timing analysis (or by the structure of already
    placed barriers) with no run-time cost whatsoever.  This fraction is
    the feature unique to barrier MIMD architectures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import ScheduleResult, SyncCounts

__all__ = ["SyncFractions", "fractions_of"]


@dataclass(frozen=True, slots=True)
class SyncFractions:
    """The three fractions; they always sum to 1 (when any edge exists)."""

    total: int
    barrier: float
    serialized: float
    static: float

    def __post_init__(self) -> None:
        if self.total:
            s = self.barrier + self.serialized + self.static
            if abs(s - 1.0) > 1e-9:
                raise ValueError(f"fractions sum to {s}, expected 1")

    @property
    def no_runtime_sync(self) -> float:
        """Serialized + static: synchronizations with zero run-time cost.

        The paper's headline claim is that "more than 77% of all
        synchronizations which would occur in execution on a conventional
        MIMD will be accomplished without runtime synchronization".
        """
        return self.serialized + self.static

    def render(self) -> str:
        return (
            f"barrier {self.barrier:6.1%}  serialized {self.serialized:6.1%}  "
            f"static {self.static:6.1%}  (of {self.total} implied syncs)"
        )


def fractions_of(result: "ScheduleResult | SyncCounts") -> SyncFractions:
    """Compute the section 3.1 fractions for one schedule.

    Accepts anything carrying a ``counts`` attribute (a full
    :class:`ScheduleResult` or the zero-copy driver's
    :class:`~repro.perf.parallel.CompactResult`) or bare counts.
    """
    counts = getattr(result, "counts", result)
    total = counts.total_edges
    if total == 0:
        return SyncFractions(0, 0.0, 0.0, 0.0)
    barrier = counts.barriers_final / total
    serialized = counts.serialized_edges / total
    # computed as the remainder; clamp the floating-point residue so a
    # fully-discharged schedule cannot report -1e-16
    static = max(0.0, 1.0 - barrier - serialized)
    return SyncFractions(total, barrier, serialized, static)
