"""Corpus-level aggregation of fault-campaign outcomes.

One :class:`CaseRobustness` records what a fault plan did to a single
scheduled benchmark -- races before and after ε-hardening, the static
``ε*`` margin, and what hardening cost.  :func:`aggregate_robustness`
reduces a batch of them to one :class:`RobustnessPoint`, i.e. one point
of the fault-tolerance curve the ``robustness`` experiment sweeps out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CaseRobustness", "RobustnessPoint", "aggregate_robustness"]


@dataclass(frozen=True, slots=True)
class CaseRobustness:
    """Fault-campaign outcome for one benchmark at one ε."""

    epsilon: float
    n_timing_edges: int
    epsilon_star: float  # math.inf when every edge is structural
    races_unhardened: int  # distinct raced edges
    races_hardened: int
    extra_barriers: int
    makespan_overhead: float
    deadlocks: int = 0


@dataclass(frozen=True)
class RobustnessPoint:
    """One ε point of the corpus fault-tolerance curve."""

    epsilon: float
    n_cases: int
    #: Fraction of benchmarks with at least one observed race, before
    #: and after hardening.  ``racy_hardened`` staying at zero is the
    #: experimental check of the hardening soundness argument.
    racy_fraction: float
    racy_fraction_hardened: float
    mean_races: float
    mean_races_hardened: float
    #: Fraction whose static margin already covers this ε (``ε* >= ε``);
    #: the complement is the population hardening exists for.
    covered_fraction: float
    mean_extra_barriers: float
    mean_makespan_overhead: float
    n_deadlocks: int


def aggregate_robustness(cases: Sequence[CaseRobustness]) -> RobustnessPoint:
    if not cases:
        raise ValueError("cannot aggregate an empty robustness batch")
    eps = cases[0].epsilon
    if any(c.epsilon != eps for c in cases):
        raise ValueError("mixed-epsilon batch; aggregate one point at a time")
    unhardened = np.asarray([c.races_unhardened for c in cases], dtype=float)
    hardened = np.asarray([c.races_hardened for c in cases], dtype=float)
    return RobustnessPoint(
        epsilon=eps,
        n_cases=len(cases),
        racy_fraction=float((unhardened > 0).mean()),
        racy_fraction_hardened=float((hardened > 0).mean()),
        mean_races=float(unhardened.mean()),
        mean_races_hardened=float(hardened.mean()),
        covered_fraction=float(
            np.mean([1.0 if c.epsilon_star >= eps or math.isinf(c.epsilon_star) else 0.0 for c in cases])
        ),
        mean_extra_barriers=float(np.mean([c.extra_barriers for c in cases])),
        mean_makespan_overhead=float(
            np.mean([c.makespan_overhead for c in cases])
        ),
        n_deadlocks=sum(c.deadlocks for c in cases),
    )
