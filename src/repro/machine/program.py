"""Lowering a schedule to the machine-level program the hardware executes.

A :class:`MachineProgram` is what the barrier-MIMD "loader" would place
in each processor's instruction memory and the barrier controller's
queue: per-PE streams of :class:`MachineOp` (with latency intervals) and
:class:`BarrierRef` wait instructions, plus one
:class:`~repro.barriers.mask.BarrierMask` per barrier.

For the SBM the program also fixes the *total* barrier order loaded into
the FIFO queue (any linear extension of ``<_b`` is valid and
deadlock-free; we use the barrier dag's deterministic topological
order).  The producer/consumer edge list rides along so an execution
trace can be verified against the original DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.barriers.mask import BarrierMask
from repro.timing import Interval
from repro.core.schedule import Schedule
from repro.ir.dag import NodeId
from repro.ir.tuples import IRTuple

__all__ = ["MachineOp", "BarrierRef", "MachineProgram"]


def _queue_order(schedule: Schedule, bd, fire) -> tuple[int, ...]:
    """Topological sort of the barriers' happens-before relation plus
    disjoint-window edges (see :meth:`MachineProgram.from_schedule`)."""
    desc = schedule.hb_barrier_descendants()
    succs: dict[int, set[int]] = {bid: set(d) for bid, d in desc.items()}
    ids = list(succs)
    for a_idx, a in enumerate(ids):
        for b in ids[a_idx + 1:]:
            if b in succs[a] or a in succs[b]:
                continue
            if fire[a].hi < fire[b].lo:
                succs[a].add(b)
            elif fire[b].hi < fire[a].lo:
                succs[b].add(a)
    in_deg = {bid: 0 for bid in ids}
    for bid, out in succs.items():
        for s in out:
            in_deg[s] += 1
    frontier = sorted(
        (bid for bid, d in in_deg.items() if d == 0),
        key=lambda bid: (fire[bid].lo, fire[bid].hi, bid),
    )
    order: list[int] = []
    while frontier:
        bid = frontier.pop(0)
        order.append(bid)
        ready = []
        for s in succs[bid]:
            in_deg[s] -= 1
            if in_deg[s] == 0:
                ready.append(s)
        frontier.extend(ready)
        frontier.sort(key=lambda b: (fire[b].lo, fire[b].hi, b))
    if len(order) != len(ids):
        raise ValueError(
            "barrier run-time order constraints are cyclic: schedule is unsound"
        )
    return tuple(order)


@dataclass(frozen=True, slots=True)
class MachineOp:
    """One executable instruction with its static latency interval."""

    node: NodeId
    latency: Interval
    mnemonic: str = ""


@dataclass(frozen=True, slots=True)
class BarrierRef:
    """A wait instruction naming the barrier it participates in."""

    barrier_id: int


StreamItem = Union[MachineOp, BarrierRef]


@dataclass(frozen=True)
class MachineProgram:
    """Loader image: streams, barrier masks, SBM queue order, DAG edges."""

    n_pes: int
    streams: tuple[tuple[StreamItem, ...], ...]
    masks: dict[int, BarrierMask]
    #: Total order for the SBM FIFO (a linear extension of ``<_b``),
    #: including the initial barrier first.
    barrier_order: tuple[int, ...]
    initial_barrier_id: int
    #: Producer/consumer edges for post-execution verification.
    edges: tuple[tuple[NodeId, NodeId], ...]
    #: Release latency of every non-initial barrier (hardware model).
    barrier_latency: int = 0
    #: Dynamic data guards of a hybrid program: ``consumer -> producers``
    #: for every demoted (timing-fragile) edge.  Before executing a
    #: guarded consumer the engine waits -- DBM-style wait-for-data --
    #: until every listed producer has finished.  Empty for pure-static
    #: programs, so the loader image is unchanged unless the hybrid
    #: scheduler actually demoted something.
    guards: dict[NodeId, tuple[NodeId, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.streams) != self.n_pes:
            raise ValueError("one stream per processor required")
        if set(self.barrier_order) != set(self.masks):
            raise ValueError("barrier_order and masks disagree")
        if self.barrier_order and self.barrier_order[0] != self.initial_barrier_id:
            raise ValueError("the initial barrier must head the queue")

    @staticmethod
    def from_schedule(
        schedule: Schedule,
        guards: dict[NodeId, tuple[NodeId, ...]] | None = None,
    ) -> "MachineProgram":
        """Lower a finished schedule.

        The SBM queue must present barriers in an order consistent with
        *every* possible run-time arrival order.  Two barriers have a
        forced run-time order when they are comparable in the schedule's
        happens-before graph H (stream order plus all committed data
        edges; see :meth:`repro.core.schedule.Schedule.hb_barrier_ordered`),
        or when their static fire windows are disjoint.  The SBM merging
        invariant guarantees every pair falls in one of those cases, and
        the union of both relations is acyclic (each edge means "always
        fires no later than"), so a topological sort of the union yields
        a queue whose FIFO head never stalls."""
        bd = schedule.barrier_dag()
        fire = bd.fire_times()
        order = _queue_order(schedule, bd, fire)
        masks: dict[int, BarrierMask] = {}
        for barrier in bd.barriers():
            masks[barrier.id] = BarrierMask.from_pes(
                barrier.participants, schedule.n_pes
            )
        streams: list[tuple[StreamItem, ...]] = []
        for pe in range(schedule.n_pes):
            items: list[StreamItem] = []
            for item in schedule.streams[pe]:
                if hasattr(item, "participants"):  # Barrier
                    items.append(BarrierRef(item.id))
                else:
                    payload = schedule.dag.payload(item)
                    mnemonic = (
                        payload.render() if isinstance(payload, IRTuple) else str(item)
                    )
                    items.append(
                        MachineOp(item, schedule.dag.latency(item), mnemonic)
                    )
            streams.append(tuple(items))
        return MachineProgram(
            n_pes=schedule.n_pes,
            streams=tuple(streams),
            masks=masks,
            barrier_order=order,
            initial_barrier_id=schedule.initial_barrier.id,
            edges=tuple(schedule.dag.real_edges()),
            barrier_latency=schedule.barrier_latency,
            guards=dict(guards) if guards else {},
        )

    @property
    def n_instructions(self) -> int:
        return sum(
            1 for stream in self.streams for it in stream if isinstance(it, MachineOp)
        )

    @property
    def n_barriers(self) -> int:
        """Barriers excluding the initial machine-start barrier."""
        return len(self.masks) - 1

    @property
    def n_guards(self) -> int:
        """Demoted edges resolved dynamically (0 for static programs)."""
        return sum(len(ps) for ps in self.guards.values())

    def render(self) -> str:
        lines = [f"barrier queue: {' '.join('b%d' % b for b in self.barrier_order)}"]
        if self.guards:
            waits = " ".join(
                f"{consumer!s}<-({', '.join(str(p) for p in ps)})"
                for consumer, ps in sorted(
                    self.guards.items(), key=lambda kv: str(kv[0])
                )
            )
            lines.append(f"data guards: {waits}")
        for pe, stream in enumerate(self.streams):
            parts = []
            for item in stream:
                if isinstance(item, BarrierRef):
                    parts.append(f"wait(b{item.barrier_id})")
                else:
                    parts.append(item.mnemonic or str(item.node))
            lines.append(f"PE{pe}: " + "; ".join(parts))
        return "\n".join(lines)
