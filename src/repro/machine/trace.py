"""Execution traces and their verification against the instruction DAG.

Both barrier-machine simulators produce an :class:`ExecutionTrace`
recording, for one concrete realization of the instruction durations,
when every instruction started and finished and when every barrier
fired.  :meth:`ExecutionTrace.verify` then checks the fundamental
soundness property of the whole compiler:

    for every producer/consumer edge ``(g, i)`` of the instruction DAG,
    ``finish(g) <= start(i)``.

If the scheduler's static reasoning (heights, dominators, longest
min/max paths, barrier placement, merging) is correct, this holds for
*every* duration realization -- which is exactly what the property-based
tests hammer on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.ir.dag import NodeId

__all__ = ["DeadlockError", "OrderViolation", "ExecutionTrace"]


class DeadlockError(RuntimeError):
    """The machine stopped with processors still waiting (queue order
    inconsistent with arrivals, or a barrier with absent participants)."""


@dataclass(frozen=True, slots=True)
class OrderViolation:
    """A producer finished after its consumer started: unsound schedule."""

    producer: NodeId
    consumer: NodeId
    producer_finish: int
    consumer_start: int

    @property
    def slack(self) -> int:
        """``consumer_start - producer_finish``; negative for every
        violation (how many time units the proof missed by)."""
        return self.consumer_start - self.producer_finish

    def __str__(self) -> str:
        return (
            f"edge {self.producer!r} -> {self.consumer!r}: producer finished "
            f"at {self.producer_finish} but consumer started at "
            f"{self.consumer_start} (slack {self.slack})"
        )


@dataclass(frozen=True)
class ExecutionTrace:
    """Timeline of one simulated execution."""

    machine: str  # "sbm" | "dbm"
    start: Mapping[NodeId, int]
    finish: Mapping[NodeId, int]
    barrier_fire: Mapping[int, int]
    pe_finish: tuple[int, ...]
    durations: Mapping[NodeId, int] = field(default_factory=dict)
    #: Out-of-interval excursions recorded under fault injection
    #: (``run_machine(..., allow_overrun=True)``): signed excess beyond the
    #: static interval -- ``duration - latency.hi`` for an overrun,
    #: ``duration - latency.lo`` (negative) for an underrun.
    overruns: Mapping[NodeId, int] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        return max(self.pe_finish, default=0)

    def verify(self, edges) -> list[OrderViolation]:
        """All producer/consumer order violations (empty == sound run)."""
        violations = []
        for g, i in edges:
            if self.finish[g] > self.start[i]:
                violations.append(
                    OrderViolation(g, i, self.finish[g], self.start[i])
                )
        return violations

    def assert_sound(self, edges) -> None:
        violations = self.verify(edges)
        if violations:
            sample = "; ".join(str(v) for v in violations[:3])
            raise AssertionError(
                f"{len(violations)} producer/consumer violations: {sample}"
            )

    def describe(self) -> str:
        fires = " ".join(
            f"b{bid}@{t}" for bid, t in sorted(self.barrier_fire.items())
        )
        faults = f" overruns={len(self.overruns)}" if self.overruns else ""
        return (
            f"{self.machine.upper()} run: makespan={self.makespan} "
            f"PE finishes={list(self.pe_finish)} fires: {fires}{faults}"
        )
