"""Execution traces and their verification against the instruction DAG.

Both barrier-machine simulators produce an :class:`ExecutionTrace`
recording, for one concrete realization of the instruction durations,
when every instruction started and finished and when every barrier
fired.  :meth:`ExecutionTrace.verify` then checks the fundamental
soundness property of the whole compiler:

    for every producer/consumer edge ``(g, i)`` of the instruction DAG,
    ``finish(g) <= start(i)``.

If the scheduler's static reasoning (heights, dominators, longest
min/max paths, barrier placement, merging) is correct, this holds for
*every* duration realization -- which is exactly what the property-based
tests hammer on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.ir.dag import NodeId

__all__ = [
    "DeadlockError",
    "GuardStall",
    "GuardWait",
    "OrderViolation",
    "ExecutionTrace",
]


class DeadlockError(RuntimeError):
    """The machine stopped with processors still waiting (queue order
    inconsistent with arrivals, or a barrier with absent participants)."""


class GuardStall(RuntimeError):
    """A hybrid data guard spun past its watchdog budget.

    Raised by the engine when a demoted (dynamically-resolved) edge's
    consumer had to wait longer than the guard policy's timeout for its
    producers to finish -- the overrun was *detected and reported*
    instead of racing silently.  Carries the blamed edge and, when the
    controller knows one, the active fault-plan summary.
    """

    def __init__(
        self,
        consumer: NodeId,
        producers: tuple[NodeId, ...],
        waited: int,
        timeout: int,
        context: str | None = None,
    ) -> None:
        self.consumer = consumer
        self.producers = producers
        self.waited = waited
        self.timeout = timeout
        self.context = context
        blamed = ", ".join(str(p) for p in producers)
        message = (
            f"guard stall: consumer {consumer!s} waited {waited} units "
            f"(timeout {timeout}) for producer(s) {blamed}"
        )
        if context:
            message += f" under faults: {context}"
        super().__init__(message)


@dataclass(frozen=True, slots=True)
class GuardWait:
    """One resolved data-guard wait of a hybrid execution.

    ``waited == 0`` means the guard was satisfied on arrival (the static
    order held, as it always does without faults); ``waited > 0`` means
    the guard *recovered* a would-be race -- the producer had not
    finished when the consumer reached the demoted edge.
    """

    consumer: NodeId
    producers: tuple[NodeId, ...]
    arrival: int
    resumed: int
    polls: int

    @property
    def waited(self) -> int:
        return self.resumed - self.arrival

    @property
    def recovered(self) -> bool:
        return self.waited > 0


@dataclass(frozen=True, slots=True)
class OrderViolation:
    """A producer finished after its consumer started: unsound schedule."""

    producer: NodeId
    consumer: NodeId
    producer_finish: int
    consumer_start: int
    #: Active fault-plan summary when the violation surfaced under
    #: injection (empty for plain simulation), so a raised violation is
    #: self-describing without re-running with tracing.
    context: str = ""

    @property
    def slack(self) -> int:
        """``consumer_start - producer_finish``; negative for every
        violation (how many time units the proof missed by)."""
        return self.consumer_start - self.producer_finish

    def __str__(self) -> str:
        suffix = f" under faults: {self.context}" if self.context else ""
        return (
            f"edge {self.producer!r} -> {self.consumer!r}: producer finished "
            f"at {self.producer_finish} but consumer started at "
            f"{self.consumer_start} (slack {self.slack}){suffix}"
        )


@dataclass(frozen=True)
class ExecutionTrace:
    """Timeline of one simulated execution."""

    machine: str  # "sbm" | "dbm"
    start: Mapping[NodeId, int]
    finish: Mapping[NodeId, int]
    barrier_fire: Mapping[int, int]
    pe_finish: tuple[int, ...]
    durations: Mapping[NodeId, int] = field(default_factory=dict)
    #: Out-of-interval excursions recorded under fault injection
    #: (``run_machine(..., allow_overrun=True)``): signed excess beyond the
    #: static interval -- ``duration - latency.hi`` for an overrun,
    #: ``duration - latency.lo`` (negative) for an underrun.
    overruns: Mapping[NodeId, int] = field(default_factory=dict)
    #: Data-guard waits of a hybrid execution (empty for pure-static
    #: programs).  Entries with ``waited > 0`` are recovered races.
    guard_waits: tuple[GuardWait, ...] = ()

    @property
    def makespan(self) -> int:
        return max(self.pe_finish, default=0)

    @property
    def guard_saves(self) -> int:
        """Guard waits that actually fired: races the runtime recovered."""
        return sum(1 for w in self.guard_waits if w.recovered)

    def verify(self, edges, context: str = "") -> list[OrderViolation]:
        """All producer/consumer order violations (empty == sound run).

        ``context`` (e.g. the active fault-plan summary) is stamped onto
        every violation so campaign failures name their injection.
        """
        violations = []
        for g, i in edges:
            if self.finish[g] > self.start[i]:
                violations.append(
                    OrderViolation(g, i, self.finish[g], self.start[i], context)
                )
        return violations

    def assert_sound(self, edges, context: str = "") -> None:
        violations = self.verify(edges, context)
        if violations:
            sample = "; ".join(str(v) for v in violations[:3])
            raise AssertionError(
                f"{len(violations)} producer/consumer violations: {sample}"
            )

    def describe(self) -> str:
        fires = " ".join(
            f"b{bid}@{t}" for bid, t in sorted(self.barrier_fire.items())
        )
        faults = f" overruns={len(self.overruns)}" if self.overruns else ""
        return (
            f"{self.machine.upper()} run: makespan={self.makespan} "
            f"PE finishes={list(self.pe_finish)} fires: {fires}{faults}"
        )
