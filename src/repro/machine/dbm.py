"""Dynamic Barrier MIMD simulator (paper section 3.2).

The DBM replaces the SBM's FIFO queue with an associative matching
memory: *any* enqueued barrier whose participants are all waiting fires,
in whatever order run-time arrivals dictate.  This removes the SBM's
head-of-queue serialization (and the need for barrier merging) at the
cost of more expensive hardware [OKDi90].

When several barriers become ready, the controller fires the one whose
last participant arrived earliest (ties by barrier id) -- the order a
real associative match would observe events in; ready barriers always
have disjoint waiter sets, so the choice never affects correctness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.machine.durations import DurationSampler
from repro.machine.engine import run_machine
from repro.machine.program import MachineProgram
from repro.machine.trace import ExecutionTrace

__all__ = ["DBMSimulator", "simulate_dbm"]


@dataclass
class DBMController:
    """Associative firing rule: any fully-arrived barrier may execute."""

    program: MachineProgram

    def select(
        self, waiting: dict[int, int], arrival: dict[int, int]
    ) -> tuple[int, int] | None:
        best: tuple[int, int] | None = None  # (fire_time, barrier_id)
        for barrier_id in set(waiting.values()):
            mask = self.program.masks[barrier_id]
            if all(waiting.get(pe) == barrier_id for pe in mask):
                fire_time = max(arrival[pe] for pe in mask)
                if best is None or (fire_time, barrier_id) < best:
                    best = (fire_time, barrier_id)
        if best is None:
            return None
        fire_time, barrier_id = best
        return barrier_id, fire_time


@dataclass
class DBMSimulator:
    """Convenience wrapper executing many runs of one program."""

    program: MachineProgram

    def run(
        self,
        sampler: DurationSampler | None = None,
        rng: random.Random | int | None = None,
        allow_overrun: bool = False,
    ) -> ExecutionTrace:
        controller = DBMController(self.program)
        return run_machine(
            self.program, controller, "dbm", sampler, rng, allow_overrun
        )

    def run_many(
        self,
        n_runs: int,
        sampler: DurationSampler | None = None,
        seed: int = 0,
    ) -> list[ExecutionTrace]:
        rng = random.Random(seed)
        return [self.run(sampler, rng) for _ in range(n_runs)]


def simulate_dbm(
    program: MachineProgram,
    sampler: DurationSampler | None = None,
    rng: random.Random | int | None = None,
    allow_overrun: bool = False,
) -> ExecutionTrace:
    """One DBM execution of ``program`` under ``sampler``."""
    return DBMSimulator(program).run(sampler, rng, allow_overrun)
