"""Instruction-duration samplers for the simulators.

A barrier-MIMD schedule must be correct for *every* realization of the
variable execution times, so the simulators take a pluggable sampler:

* :class:`UniformSampler` -- independent uniform draw in ``[min, max]``
  (the generic stochastic model of section 2.1's loads and mul/div/mod);
* :class:`MinSampler` / :class:`MaxSampler` -- the two extreme corners,
  which bound the schedule's completion-time interval;
* :class:`BimodalSampler` -- cache-hit/cache-miss style: minimum with
  probability ``p_fast``, maximum otherwise (the shared-bus Load story);
* :class:`FixedSampler` -- explicit per-node durations, used by tests to
  build adversarial realizations (producers slow, consumers fast).

Samplers never mutate shared state; randomized ones take the RNG per call
so a single seeded ``random.Random`` drives a whole simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Protocol

from repro.timing import Interval
from repro.ir.dag import NodeId

__all__ = [
    "DurationSampler",
    "UniformSampler",
    "MinSampler",
    "MaxSampler",
    "BimodalSampler",
    "FixedSampler",
]


class DurationSampler(Protocol):
    """Draw a concrete duration for one dynamic instruction instance."""

    def sample(self, node: NodeId, latency: Interval, rng: random.Random) -> int:
        ...


@dataclass(frozen=True)
class UniformSampler:
    """Independent uniform integer draw over the latency interval."""

    def sample(self, node: NodeId, latency: Interval, rng: random.Random) -> int:
        if latency.is_point:
            return latency.lo
        return rng.randint(latency.lo, latency.hi)


@dataclass(frozen=True)
class MinSampler:
    """Every instruction takes its minimum time (best-case corner)."""

    def sample(self, node: NodeId, latency: Interval, rng: random.Random) -> int:
        return latency.lo


@dataclass(frozen=True)
class MaxSampler:
    """Every instruction takes its maximum time (worst-case corner,
    the timing model of the paper's VLIW comparison)."""

    def sample(self, node: NodeId, latency: Interval, rng: random.Random) -> int:
        return latency.hi


@dataclass(frozen=True)
class BimodalSampler:
    """Minimum with probability ``p_fast``, else maximum.

    Models hit/miss behaviour (a Load is 1 unit on a cache hit, 4 on a
    miss) more faithfully than a uniform draw.
    """

    p_fast: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_fast <= 1.0:
            raise ValueError("p_fast must be in [0, 1]")

    def sample(self, node: NodeId, latency: Interval, rng: random.Random) -> int:
        if latency.is_point:
            return latency.lo
        return latency.lo if rng.random() < self.p_fast else latency.hi


@dataclass(frozen=True)
class FixedSampler:
    """Explicit per-node durations (adversarial tests); missing nodes fall
    back to ``default`` ("min" or "max")."""

    durations: Mapping[NodeId, int] = field(default_factory=dict)
    default: str = "max"

    def __post_init__(self) -> None:
        if self.default not in ("max", "min"):
            raise ValueError(
                f"FixedSampler default must be 'max' or 'min', got {self.default!r}"
            )

    def sample(self, node: NodeId, latency: Interval, rng: random.Random) -> int:
        if node in self.durations:
            value = self.durations[node]
            if value not in latency:
                raise ValueError(
                    f"fixed duration {value} for node {node!r} outside {latency}"
                )
            return value
        return latency.hi if self.default == "max" else latency.lo
