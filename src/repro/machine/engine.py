"""Shared discrete-event execution loop for the barrier machines.

Between barriers the processors are independent, so simulation needs no
global event queue: each processor runs ahead until it blocks at a wait
instruction, then a machine-specific *barrier controller* decides which
barrier fires next and at what time.  The loop alternates the two phases
until every processor retires its stream.

Controllers implement one method, :meth:`BarrierController.select`:
given who is waiting where (and since when), return the next barrier to
fire and its fire time, or ``None`` if nothing can fire.  ``None`` with
no processor still running is a deadlock -- a real hardware hang, which
for the SBM would mean the compile-time queue order disagreed with the
run-time arrival order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from repro.machine.durations import DurationSampler, UniformSampler
from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.trace import DeadlockError, ExecutionTrace, GuardStall, GuardWait
from repro.obs.metrics import current_registry
from repro.obs.spans import current_tracer
from repro.perf.timers import stage

__all__ = ["BarrierController", "GuardPolicy", "run_machine"]


class BarrierController(Protocol):
    """Machine-specific firing rule (SBM FIFO or DBM associative)."""

    def select(
        self,
        waiting: dict[int, int],
        arrival: dict[int, int],
    ) -> tuple[int, int] | None:
        """``waiting[pe] = barrier_id`` for blocked processors and
        ``arrival[pe]`` their arrival times; return
        ``(barrier_id, fire_time)`` or ``None``."""
        ...


@dataclass(frozen=True, slots=True)
class GuardPolicy:
    """Watchdog parameters for dynamic data guards (hybrid programs).

    A blocked consumer re-checks its producers every ``poll`` time units
    (bounded retry: the recorded ``GuardWait.polls`` counts the retries),
    so the resume time is quantized to poll ticks past the arrival.  A
    wait that would exceed ``timeout`` raises :class:`GuardStall`
    instead of spinning forever -- the race is *reported*, not silent.
    """

    poll: int = 1
    timeout: int = 4096

    def __post_init__(self) -> None:
        if self.poll < 1:
            raise ValueError("guard poll interval must be >= 1")
        if self.timeout < self.poll:
            raise ValueError("guard timeout must be >= poll interval")


@dataclass
class _PEState:
    pc: int = 0
    clock: int = 0
    waiting: int | None = None  # barrier id
    done: bool = False
    #: Guarded consumer this PE is blocked on (producers not finished).
    guarded: object | None = None  # NodeId


def run_machine(
    program: MachineProgram,
    controller: BarrierController,
    machine_name: str,
    sampler: DurationSampler | None = None,
    rng: random.Random | int | None = None,
    allow_overrun: bool = False,
    guard_policy: GuardPolicy | None = None,
) -> ExecutionTrace:
    """Execute ``program`` under ``controller``; return the full trace.

    By default a sampled duration outside an instruction's static
    ``[min,max]`` interval is a programming error and raises
    ``ValueError`` -- the compiler's entire soundness story rests on the
    interval being respected.  Fault-injection campaigns
    (:mod:`repro.faults`) deliberately violate the model: with
    ``allow_overrun=True`` the excursion is executed anyway and recorded
    in ``ExecutionTrace.overruns`` so the race detector can correlate
    observed order violations with the injected faults.

    Hybrid programs additionally carry ``program.guards``: demoted
    data edges the engine resolves dynamically by holding the consumer
    until its producers have finished, under the ``guard_policy``
    watchdog (default :class:`GuardPolicy`; a ``guard_policy``
    attribute on ``controller`` is honored when the argument is
    omitted).  Every resolved wait is recorded in
    ``ExecutionTrace.guard_waits``.
    """
    with stage("simulate"):
        return _run_machine(
            program, controller, machine_name, sampler, rng, allow_overrun,
            guard_policy,
        )


def _fault_context(sampler, controller) -> str:
    """Active fault-plan summary, when either party knows one."""
    for source in (sampler, controller):
        context = getattr(source, "fault_context", "")
        if context:
            return str(context)
    return ""


def _run_machine(
    program: MachineProgram,
    controller: BarrierController,
    machine_name: str,
    sampler: DurationSampler | None,
    rng: random.Random | int | None,
    allow_overrun: bool,
    guard_policy: GuardPolicy | None = None,
) -> ExecutionTrace:
    sampler = sampler or UniformSampler()
    if rng is None or isinstance(rng, int):
        rng = random.Random(rng)
    # Clock-aware samplers (windowed spikes) see the instruction's start
    # time; plain samplers keep the original position-free interface.
    sample_at = getattr(sampler, "sample_at", None)

    guards = program.guards
    policy = guard_policy or getattr(controller, "guard_policy", None)
    if guards and policy is None:
        policy = GuardPolicy()

    states = [_PEState() for _ in range(program.n_pes)]
    start: dict = {}
    finish: dict = {}
    durations: dict = {}
    overruns: dict = {}
    barrier_fire: dict[int, int] = {}
    guard_waits: list[GuardWait] = []
    resolved_guards: set = set()
    # Blocked-PE bookkeeping is maintained incrementally (entries added
    # when ``advance`` blocks a PE, popped at release) so one loop
    # iteration costs O(participants), not O(n_pes) -- the difference
    # between linear and quadratic simulation at 1024 PEs.
    waiting: dict[int, int] = {}
    arrival: dict[int, int] = {}
    done_count = 0

    def resolve_guard(st: _PEState, node) -> None:
        """All producers of ``node`` finished: charge the wait (if any),
        quantized into watchdog poll ticks, and release the consumer."""
        producers = guards[node]
        ready = max(finish[p] for p in producers)
        arrival = st.clock
        if ready > arrival:
            polls = -(-(ready - arrival) // policy.poll)  # ceil division
            resumed = arrival + polls * policy.poll
            if resumed - arrival > policy.timeout:
                raise GuardStall(
                    node,
                    producers,
                    resumed - arrival,
                    policy.timeout,
                    _fault_context(sampler, controller) or None,
                )
        else:
            polls = 0
            resumed = arrival
        guard_waits.append(GuardWait(node, producers, arrival, resumed, polls))
        st.clock = resumed
        resolved_guards.add(node)

    def advance(pe: int) -> None:
        """Run processor ``pe`` until it blocks or retires."""
        nonlocal done_count
        st = states[pe]
        stream = program.streams[pe]
        while st.pc < len(stream):
            item = stream[st.pc]
            if isinstance(item, BarrierRef):
                st.waiting = item.barrier_id
                waiting[pe] = item.barrier_id
                arrival[pe] = st.clock
                st.pc += 1
                return
            assert isinstance(item, MachineOp)
            if guards and item.node in guards and item.node not in resolved_guards:
                if all(p in finish for p in guards[item.node]):
                    resolve_guard(st, item.node)
                else:
                    # Producer finish times unknown yet: block here and
                    # let the main loop retry once more work retires.
                    st.guarded = item.node
                    return
            if sample_at is not None:
                dur = sample_at(item.node, item.latency, rng, st.clock)
            else:
                dur = sampler.sample(item.node, item.latency, rng)
            if dur not in item.latency:
                if not allow_overrun:
                    raise ValueError(
                        f"sampler produced {dur} outside {item.latency} for {item.node!r}"
                    )
                excess = (
                    dur - item.latency.hi
                    if dur > item.latency.hi
                    else dur - item.latency.lo
                )
                overruns[item.node] = excess
            start[item.node] = st.clock
            st.clock += dur
            finish[item.node] = st.clock
            durations[item.node] = dur
            st.pc += 1
        st.done = True
        done_count += 1

    def settle_guards() -> bool:
        """Release guard-blocked PEs whose producers have now finished;
        repeat to a fixpoint (a release can retire another's producer)."""
        progressed = False
        changed = True
        while changed:
            changed = False
            for pe, st in enumerate(states):
                node = st.guarded
                if node is not None and all(p in finish for p in guards[node]):
                    st.guarded = None
                    advance(pe)
                    changed = progressed = True
        return progressed

    for pe in range(program.n_pes):
        advance(pe)
    if guards:
        settle_guards()

    # One lookup each per run, not per release: the loop below is the
    # simulator's hot path.
    reg = current_registry()
    tracer = current_tracer()

    while done_count < program.n_pes:
        choice = controller.select(waiting, arrival)
        if choice is None:
            if guards and settle_guards():
                continue
            stuck = {pe: f"b{bid}" for pe, bid in waiting.items()}
            message = f"{machine_name}: no barrier can fire; waiting: {stuck}"
            # Name the pending barrier when the controller knows one
            # (the SBM's queue head) and which of its participants
            # never arrived -- the only clue to a real hardware hang.
            pending = getattr(controller, "pending", None)
            pending_id = pending() if callable(pending) else None
            if pending_id is not None:
                mask = program.masks.get(pending_id)
                absent = sorted(
                    pe for pe in (mask or ()) if waiting.get(pe) != pending_id
                )
                message += (
                    f"; pending barrier b{pending_id} still needs "
                    f"PEs {absent}"
                )
            stalled = {
                pe: str(st.guarded)
                for pe, st in enumerate(states)
                if st.guarded is not None
            }
            if stalled:
                message += f"; guard-blocked: {stalled}"
            context = _fault_context(sampler, controller)
            if context:
                message += f"; under faults: {context}"
            raise DeadlockError(message)
        barrier_id, fire_time = choice
        if barrier_id != program.initial_barrier_id:
            fire_time += program.barrier_latency
        barrier_fire[barrier_id] = fire_time
        if reg is not None:
            reg.inc("engine.barrier_releases")
            reg.observe("engine.release_waiting", len(waiting))
        if tracer is not None:
            tracer.instant(
                "engine.release",
                {
                    "machine": machine_name,
                    "barrier": barrier_id,
                    "fire_time": fire_time,
                    "waiting": len(waiting),
                },
            )
        mask = program.masks[barrier_id]
        for pe in mask:
            st = states[pe]
            if st.waiting != barrier_id:
                raise DeadlockError(
                    f"{machine_name}: barrier b{barrier_id} fired but PE {pe} "
                    f"is not waiting on it"
                )
            # Exact-synchrony release: every participant resumes at fire_time.
            st.clock = fire_time
            st.waiting = None
            waiting.pop(pe, None)
            arrival.pop(pe, None)
            advance(pe)

    return ExecutionTrace(
        machine=machine_name,
        start=start,
        finish=finish,
        barrier_fire=barrier_fire,
        pe_finish=tuple(st.clock for st in states),
        durations=durations,
        overruns=overruns,
        guard_waits=tuple(guard_waits),
    )
