"""Machine-level execution models (paper sections 3.2 and 6).

The scheduler's output is lowered to a :class:`~repro.machine.program.MachineProgram`
-- per-processor op streams plus barrier bit masks -- and executed by:

* :mod:`repro.machine.sbm` -- the Static Barrier MIMD: a FIFO queue of
  barrier masks; only the queue head may fire (figure 11);
* :mod:`repro.machine.dbm` -- the Dynamic Barrier MIMD: associative
  matching lets any barrier whose participants are all waiting fire;
* :mod:`repro.machine.vliw` -- the lock-step VLIW comparison model of
  section 6 (all instructions at maximum time, no asynchrony);
* :mod:`repro.machine.mimd` -- a conventional MIMD with directed
  producer/consumer synchronization, the "what would have happened
  without barrier scheduling" baseline.

Instruction durations are drawn by pluggable samplers
(:mod:`repro.machine.durations`); executing a schedule under thousands of
random draws and asserting every producer finishes before its consumers
start is the system-level soundness oracle used by the test suite.
"""

from repro.machine.durations import (
    BimodalSampler,
    DurationSampler,
    FixedSampler,
    MaxSampler,
    MinSampler,
    UniformSampler,
)
from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.trace import DeadlockError, ExecutionTrace, OrderViolation
from repro.machine.sbm import SBMSimulator, simulate_sbm
from repro.machine.dbm import DBMSimulator, simulate_dbm
from repro.machine.vliw import VLIWSchedule, vliw_schedule
from repro.machine.mimd import ConventionalMIMDResult, simulate_conventional_mimd
from repro.machine.rtl import ClockedDBM, ClockedSBM, run_clocked

__all__ = [
    "BimodalSampler",
    "DurationSampler",
    "FixedSampler",
    "MaxSampler",
    "MinSampler",
    "UniformSampler",
    "BarrierRef",
    "MachineOp",
    "MachineProgram",
    "DeadlockError",
    "ExecutionTrace",
    "OrderViolation",
    "SBMSimulator",
    "simulate_sbm",
    "DBMSimulator",
    "simulate_dbm",
    "VLIWSchedule",
    "vliw_schedule",
    "ConventionalMIMDResult",
    "simulate_conventional_mimd",
    "ClockedDBM",
    "ClockedSBM",
    "run_clocked",
]
