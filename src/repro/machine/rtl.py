"""Clocked (RTL-style) model of the barrier hardware (figure 11 / [OKDi90]).

The event-driven engine (:mod:`repro.machine.engine`) jumps from barrier
to barrier; this module instead advances a global clock one tick at a
time and models the hardware state the companion paper describes:

* per-processor state: program counter, a busy-until countdown for the
  instruction in flight, and a WAIT output line;
* the SBM controller: a FIFO queue of barrier bit masks plus the
  combinational subset test ``head_mask & ~WAIT == 0``; when it matches,
  the head is popped and every participating processor's clock resumes
  simultaneously (after the configured release latency);
* the DBM controller: the same, but an associative match over *all*
  queued masks instead of only the head.

By default the controller may retire several barriers whose masks are
simultaneously satisfied within one tick (a combinational cascade),
which makes the clocked model produce *exactly* the same trace as the
event-driven engine for identical per-instruction durations -- the
cross-model equivalence test in the suite.

``one_per_tick=True`` models a stricter sequential controller (at most
one barrier retired per clock).  **Caveat**: that serialization is a
hardware behaviour the paper's compiler does not model -- two barriers
becoming ready on the same tick slip apart by one cycle, which can
defeat a zero-margin timing proof.  Measured on this corpus: ~1% of
randomized runs violate a dependence when schedules are compiled with
the paper's ideal ``barrier_latency = 0``, and none do (0/300 runs) when
compiled with ``barrier_latency >= 1`` -- the per-barrier margin absorbs
the retire serialization in practice.  In other words, the figure 11
hardware either needs to retire simultaneously-ready barriers in one
cycle, or the compiler must budget at least one cycle per barrier; the
test suite pins this trade-off down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.barriers.mask import BarrierMask
from repro.machine.durations import DurationSampler, UniformSampler
from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.trace import DeadlockError, ExecutionTrace

__all__ = ["run_clocked", "ClockedSBM", "ClockedDBM"]

#: Hard cap on simulated ticks (well above any benchmark's makespan).
MAX_TICKS = 10_000_000


@dataclass
class _PE:
    pc: int = 0
    busy_until: int = 0
    waiting: int | None = None  # barrier id whose WAIT line we assert
    done: bool = False


class _ControllerBase:
    def __init__(self, program: MachineProgram) -> None:
        self.program = program

    def ready_barriers(self, wait_lines: BarrierMask, waiting_on: dict[int, int]):
        raise NotImplementedError

    def retire(self, barrier_id: int) -> None:  # pragma: no cover - override
        pass


class ClockedSBM(_ControllerBase):
    """FIFO queue controller: only the head mask is tested."""

    def __init__(self, program: MachineProgram) -> None:
        super().__init__(program)
        self.head = 0

    def ready_barriers(self, wait_lines: BarrierMask, waiting_on: dict[int, int]):
        if self.head >= len(self.program.barrier_order):
            return
        barrier_id = self.program.barrier_order[self.head]
        mask = self.program.masks[barrier_id]
        if mask.is_subset_of(wait_lines) and all(
            waiting_on.get(pe) == barrier_id for pe in mask
        ):
            yield barrier_id

    def retire(self, barrier_id: int) -> None:
        self.head += 1


class ClockedDBM(_ControllerBase):
    """Associative controller: every queued mask is tested each tick."""

    def __init__(self, program: MachineProgram) -> None:
        super().__init__(program)
        self.pending = set(program.barrier_order)

    def ready_barriers(self, wait_lines: BarrierMask, waiting_on: dict[int, int]):
        for barrier_id in sorted(self.pending):
            mask = self.program.masks[barrier_id]
            if mask.is_subset_of(wait_lines) and all(
                waiting_on.get(pe) == barrier_id for pe in mask
            ):
                yield barrier_id

    def retire(self, barrier_id: int) -> None:
        self.pending.discard(barrier_id)


def run_clocked(
    program: MachineProgram,
    machine: str = "sbm",
    sampler: DurationSampler | None = None,
    rng: random.Random | int | None = None,
    one_per_tick: bool = False,
    max_ticks: int = MAX_TICKS,
) -> ExecutionTrace:
    """Tick-by-tick execution of ``program``; returns the same trace type
    as the event-driven simulators (machine name suffixed ``-rtl``)."""
    if machine not in ("sbm", "dbm"):
        raise ValueError(f"unknown machine kind {machine!r}")
    sampler = sampler or UniformSampler()
    if rng is None or isinstance(rng, int):
        rng = random.Random(rng)

    controller: _ControllerBase = (
        ClockedSBM(program) if machine == "sbm" else ClockedDBM(program)
    )
    pes = [_PE() for _ in range(program.n_pes)]
    start: dict = {}
    finish: dict = {}
    durations: dict = {}
    barrier_fire: dict[int, int] = {}
    pe_finish = [0] * program.n_pes
    latency = program.barrier_latency

    def fetch(pe_idx: int, now: int) -> None:
        """Issue instructions until the PE blocks, retires, or goes busy."""
        pe = pes[pe_idx]
        stream = program.streams[pe_idx]
        while pe.pc < len(stream) and pe.busy_until <= now and pe.waiting is None:
            item = stream[pe.pc]
            if isinstance(item, BarrierRef):
                pe.waiting = item.barrier_id
                pe.pc += 1
                return
            assert isinstance(item, MachineOp)
            dur = sampler.sample(item.node, item.latency, rng)
            if dur not in item.latency:
                raise ValueError(
                    f"sampler produced {dur} outside {item.latency}"
                )
            start[item.node] = now
            finish[item.node] = now + dur
            durations[item.node] = dur
            pe.busy_until = now + dur
            pe.pc += 1
            if dur > 0:
                return
        if pe.pc >= len(stream) and pe.busy_until <= now and pe.waiting is None:
            pe.done = True
            pe_finish[pe_idx] = max(pe_finish[pe_idx], pe.busy_until)

    now = 0
    stall_since: int | None = None
    while now <= max_ticks:
        # Phase A: processors whose instruction completed this tick issue
        # their next item (possibly asserting a WAIT line).
        for pe_idx, pe in enumerate(pes):
            if not pe.done and pe.waiting is None and pe.busy_until <= now:
                pe_finish[pe_idx] = max(pe_finish[pe_idx], pe.busy_until)
                fetch(pe_idx, now)

        if all(pe.done for pe in pes):
            return ExecutionTrace(
                machine=f"{machine}-rtl",
                start=start,
                finish=finish,
                barrier_fire=barrier_fire,
                pe_finish=tuple(pe_finish),
                durations=durations,
            )

        # Phase B: the barrier controller samples the WAIT lines.
        fired_any = True
        fired_this_tick = 0
        while fired_any:
            fired_any = False
            wait_lines = BarrierMask.empty(program.n_pes)
            waiting_on: dict[int, int] = {}
            for pe_idx, pe in enumerate(pes):
                if pe.waiting is not None and pe.busy_until <= now:
                    wait_lines = wait_lines.with_wait(pe_idx)
                    waiting_on[pe_idx] = pe.waiting
            for barrier_id in list(controller.ready_barriers(wait_lines, waiting_on)):
                release = now if barrier_id == program.initial_barrier_id else now + latency
                barrier_fire[barrier_id] = release
                controller.retire(barrier_id)
                for pe_idx in program.masks[barrier_id]:
                    pe = pes[pe_idx]
                    pe.waiting = None
                    pe.busy_until = release
                    if release <= now:
                        fetch(pe_idx, now)
                fired_any = True
                fired_this_tick += 1
                if one_per_tick:
                    fired_any = False
                    break
            if one_per_tick:
                break

        # Deadlock detection: every live PE waiting, nothing fired, and no
        # instruction still in flight to change the picture.
        live = [pe for pe in pes if not pe.done]
        if (
            live
            and fired_this_tick == 0
            and all(pe.waiting is not None and pe.busy_until <= now for pe in live)
        ):
            if stall_since is None:
                stall_since = now
            elif now - stall_since >= 1:
                stuck = {
                    idx: f"b{pe.waiting}" for idx, pe in enumerate(pes) if pe.waiting
                }
                raise DeadlockError(f"{machine}-rtl: wait lines stuck: {stuck}")
        else:
            stall_since = None
        now += 1
    raise DeadlockError(f"{machine}-rtl: exceeded {max_ticks} ticks")
