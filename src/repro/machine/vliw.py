"""VLIW comparison model (paper section 6).

"The VLIW execution mode used in scheduling the instructions assumed
that all instructions required their maximum time to execute.  No
asynchrony was allowed in VLIW execution."

A VLIW is lock-step: the compiler knows every start time exactly, so
synchronization is free but every latency must be budgeted at its
worst case.  We model this with classic list scheduling over fixed
(maximum) latencies: nodes are taken in the same max/min-height order as
the barrier scheduler, and each is placed on the processor where it can
start earliest, start = max(processor free time, operand ready time);
gaps are implicit NOPs.

The resulting makespan is the normalization baseline of figure 18.  The
paper notes the schedule was optimal (equal to the maximum-time critical
path) "for almost all the synthetic benchmarks" -- our benchmark harness
reports the same check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.labeling import compute_heights
from repro.core.ordering import OrderingKind, order_nodes
from repro.ir.dag import InstructionDAG, NodeId

__all__ = ["VLIWSchedule", "vliw_schedule"]


@dataclass(frozen=True)
class VLIWSchedule:
    """A deterministic lock-step schedule (all latencies at maximum)."""

    n_pes: int
    assignment: Mapping[NodeId, int]
    start: Mapping[NodeId, int]
    finish: Mapping[NodeId, int]
    makespan: int
    critical_path: int

    @property
    def is_critical_path_optimal(self) -> bool:
        """True when no schedule on any processor count could be shorter."""
        return self.makespan == self.critical_path

    def utilization(self) -> float:
        """Busy slots over total slots up to the makespan."""
        if self.makespan == 0:
            return 0.0
        busy = sum(self.finish[n] - self.start[n] for n in self.start)
        return busy / (self.makespan * self.n_pes)


def vliw_schedule(
    dag: InstructionDAG,
    n_pes: int,
    ordering: OrderingKind = "maxmin",
) -> VLIWSchedule:
    """List-schedule ``dag`` on a lock-step ``n_pes``-wide VLIW.

    Every instruction is budgeted at its maximum latency; consumers are
    placed no earlier than their producers' worst-case finish, which the
    global clock then guarantees at run time.
    """
    if n_pes < 1:
        raise ValueError("n_pes must be >= 1")
    heights = compute_heights(dag)
    order = order_nodes(dag, ordering, heights)

    free = [0] * n_pes
    assignment: dict[NodeId, int] = {}
    start: dict[NodeId, int] = {}
    finish: dict[NodeId, int] = {}

    for node in order:
        ready = 0
        for g in dag.real_preds(node):
            ready = max(ready, finish[g])
        # Earliest-start processor; ties to the lowest index (deterministic).
        best_pe = 0
        best_start = None
        for pe in range(n_pes):
            candidate = max(free[pe], ready)
            if best_start is None or candidate < best_start:
                best_pe, best_start = pe, candidate
        assignment[node] = best_pe
        start[node] = best_start
        finish[node] = best_start + dag.latency(node).hi
        free[best_pe] = finish[node]

    makespan = max(finish.values(), default=0)
    return VLIWSchedule(
        n_pes=n_pes,
        assignment=assignment,
        start=start,
        finish=finish,
        makespan=makespan,
        critical_path=dag.critical_path().hi,
    )
