"""Static Barrier MIMD simulator (paper section 3.2, figure 11).

The SBM barrier hardware is a FIFO queue of barrier bit masks loaded at
compile time.  Only the queue *head* may fire: it does so when every
processor in its mask has raised its WAIT line, releasing all of them on
the same clock tick.  A processor waiting on a later barrier simply keeps
waiting until that barrier reaches the head.

Consequently the head can fire no earlier than the previous head did --
an SBM-specific serialization of barrier releases which is why the paper
merges unordered, time-overlapping barriers for SBM schedules (section
4.4.3): merged barriers cannot arrive at the queue in the "wrong" order.

A well-formed queue (any linear extension of the barrier dag ``<_b``,
which :class:`~repro.machine.program.MachineProgram` guarantees) can
never deadlock: if the head waits on processor ``p``, then ``p`` has not
yet passed the head barrier, and every barrier blocking ``p`` would have
to precede the head in ``<_b`` -- contradiction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.barriers.mask import BarrierTree
from repro.machine.durations import DurationSampler
from repro.machine.engine import run_machine
from repro.machine.program import MachineProgram
from repro.machine.trace import ExecutionTrace

__all__ = ["SBMSimulator", "simulate_sbm"]


@dataclass
class SBMController:
    """FIFO firing rule: only ``queue[head]`` may execute.

    Arrival checking goes through a :class:`BarrierTree` rather than
    re-scanning the head's full mask against ``waiting`` on every call:
    under the FIFO rule a processor found waiting on the head stays
    waiting until the head fires, so each arrival is recorded in the
    tree exactly once and later calls only examine the participants
    still missing.  That keeps wide machines (1024 PEs) linear in
    arrivals per barrier instead of quadratic in mask width.
    """

    program: MachineProgram
    head: int = 0
    last_fire: int = 0
    fired: list[int] = field(default_factory=list)
    _tree: BarrierTree = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._tree = BarrierTree(self.program.n_pes)

    def pending(self) -> int | None:
        """The barrier at the queue head (None once the queue drained).

        Surfaced in the engine's deadlock diagnostic: a hung SBM is
        always stuck on its head, so naming it (plus the participants
        that never arrived) localizes the hang immediately.
        """
        if self.head >= len(self.program.barrier_order):
            return None
        return self.program.barrier_order[self.head]

    def select(
        self, waiting: dict[int, int], arrival: dict[int, int]
    ) -> tuple[int, int] | None:
        if self.head >= len(self.program.barrier_order):
            return None
        barrier_id = self.program.barrier_order[self.head]
        mask = self.program.masks[barrier_id]
        tree = self._tree
        if barrier_id not in tree:
            tree.register(barrier_id, mask)
        if not tree.ready(barrier_id):
            for pe in tree.missing(barrier_id):
                if waiting.get(pe) == barrier_id:
                    tree.arrive(barrier_id, pe)
            if not tree.ready(barrier_id):
                return None  # some participant has not arrived at the head
        fire_time = self.last_fire
        for pe in mask:
            fire_time = max(fire_time, arrival[pe])
        tree.release(barrier_id)
        self.head += 1
        self.last_fire = fire_time
        self.fired.append(barrier_id)
        return barrier_id, fire_time


@dataclass
class SBMSimulator:
    """Convenience wrapper executing many runs of one program."""

    program: MachineProgram

    def run(
        self,
        sampler: DurationSampler | None = None,
        rng: random.Random | int | None = None,
        allow_overrun: bool = False,
    ) -> ExecutionTrace:
        controller = SBMController(self.program)
        return run_machine(
            self.program, controller, "sbm", sampler, rng, allow_overrun
        )

    def run_many(
        self,
        n_runs: int,
        sampler: DurationSampler | None = None,
        seed: int = 0,
    ) -> list[ExecutionTrace]:
        rng = random.Random(seed)
        return [self.run(sampler, rng) for _ in range(n_runs)]


def simulate_sbm(
    program: MachineProgram,
    sampler: DurationSampler | None = None,
    rng: random.Random | int | None = None,
    allow_overrun: bool = False,
) -> ExecutionTrace:
    """One SBM execution of ``program`` under ``sampler``."""
    return SBMSimulator(program).run(sampler, rng, allow_overrun)
