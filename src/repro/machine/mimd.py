"""Conventional-MIMD baseline with directed synchronization (section 3).

On a conventional MIMD every cross-processor producer/consumer pair is
enforced by a *directed* run-time synchronization (figure 3): the
producer posts a flag/message the consumer must receive before it may
proceed.  Two baselines are computed for a given processor assignment:

* **naive**: one runtime synchronization per cross-processor DAG edge;
* **transitively reduced**: Shaffer [Shaf89] and Callahan [Call87] remove
  synchronizations implied by the *structure* of the task graph (program
  order chains plus other synchronizations).  This is the strongest prior
  technique the paper compares its timing-based elimination against.

:func:`simulate_conventional_mimd` also executes the assignment under a
duration sampler, charging ``sync_latency`` time units to every retained
directed synchronization on the consumer side -- quantifying the runtime
cost the barrier MIMD avoids.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

import networkx as nx

from repro.core.schedule import Schedule
from repro.machine.durations import DurationSampler, UniformSampler
from repro.ir.dag import InstructionDAG, NodeId

__all__ = ["ConventionalMIMDResult", "directed_sync_counts", "simulate_conventional_mimd"]


@dataclass(frozen=True)
class ConventionalMIMDResult:
    """Directed-synchronization counts and one simulated execution."""

    n_cross_edges: int  # naive directed syncs
    n_after_reduction: int  # after Shaffer-style transitive reduction
    makespan: int
    start: Mapping[NodeId, int]
    finish: Mapping[NodeId, int]

    @property
    def reduction_ratio(self) -> float:
        """Fraction of naive syncs removed by structure alone."""
        if self.n_cross_edges == 0:
            return 0.0
        return 1.0 - self.n_after_reduction / self.n_cross_edges


def _combined_task_graph(
    dag: InstructionDAG, schedule: Schedule
) -> "nx.DiGraph":
    """DAG edges plus per-processor program-order chain edges."""
    graph = nx.DiGraph()
    graph.add_nodes_from(dag.real_nodes)
    graph.add_edges_from(dag.real_edges())
    for pe in range(schedule.n_pes):
        chain = schedule.instructions_on(pe)
        for a, b in zip(chain, chain[1:]):
            graph.add_edge(a, b)
    return graph


def directed_sync_counts(
    dag: InstructionDAG, schedule: Schedule
) -> tuple[int, int]:
    """``(naive, reduced)`` directed synchronization counts.

    ``reduced`` counts the cross-processor edges surviving transitive
    reduction of the combined task graph -- the graph-structural
    elimination of [Shaf89]/[Call87], which cannot exploit timing.
    """
    cross = [
        (g, i)
        for g, i in dag.real_edges()
        if schedule.processor_of(g) != schedule.processor_of(i)
    ]
    combined = _combined_task_graph(dag, schedule)
    reduced = nx.transitive_reduction(combined)
    surviving = sum(1 for g, i in cross if reduced.has_edge(g, i))
    return len(cross), surviving


def simulate_conventional_mimd(
    schedule: Schedule,
    sampler: DurationSampler | None = None,
    rng: random.Random | int | None = None,
    sync_latency: int = 2,
) -> ConventionalMIMDResult:
    """Execute the schedule's processor assignment with directed syncs.

    Instructions run in each processor's stream order; a consumer with
    retained cross-processor producers additionally waits for each
    producer's finish plus ``sync_latency`` (flag transit time, the
    unbounded-delay hazard of figure 3 made concrete)."""
    sampler = sampler or UniformSampler()
    if rng is None or isinstance(rng, int):
        rng = random.Random(rng)
    dag = schedule.dag

    naive, reduced_count = directed_sync_counts(dag, schedule)
    combined = _combined_task_graph(dag, schedule)
    reduced = nx.transitive_reduction(combined)

    start: dict[NodeId, int] = {}
    finish: dict[NodeId, int] = {}
    for node in nx.topological_sort(combined):
        ready = 0
        pe = schedule.processor_of(node)
        for g in combined.predecessors(node):
            if schedule.processor_of(g) == pe:
                ready = max(ready, finish[g])
            elif reduced.has_edge(g, node):
                ready = max(ready, finish[g] + sync_latency)
            else:
                # Synchronization removed by transitive reduction: the
                # ordering is still guaranteed through retained edges.
                ready = max(ready, finish[g])
        start[node] = ready
        finish[node] = ready + sampler.sample(node, dag.latency(node), rng)

    makespan = max(finish.values(), default=0)
    return ConventionalMIMDResult(
        n_cross_edges=naive,
        n_after_reduction=reduced_count,
        makespan=makespan,
        start=start,
        finish=finish,
    )
