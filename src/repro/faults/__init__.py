"""Robustness toolkit: fault injection, race detection, ε-hardening.

The paper's static scheduler eliminates run-time synchronization by
*proving* orderings from ``[min,max]`` latency intervals.  This package
asks -- and answers -- the adversarial question: what happens when the
hardware violates those intervals?

:mod:`repro.faults.model`
    :class:`FaultPlan` (the bounded fault envelope), the
    :class:`FaultySampler` / :class:`FaultyController` injectors, and
    :func:`inflate_dag`.
:mod:`repro.faults.margin`
    Static robustness margins: per-edge slack and the schedule-level
    ``ε*`` bound (:func:`robustness_margin`).
:mod:`repro.faults.campaign`
    Seeded Monte-Carlo fault campaigns with per-edge blame reports
    (:func:`run_campaign`).
:mod:`repro.faults.harden`
    Constructive ε-hardening: re-prove the schedule against the
    inflated timing model, inserting barriers where slack ran out
    (:func:`harden_schedule`).
"""

from repro.faults.model import (
    FaultPlan,
    FaultySampler,
    FaultyController,
    inflate_dag,
)
from repro.faults.margin import EdgeMargin, MarginReport, robustness_margin
from repro.faults.campaign import (
    EdgeBlame,
    CampaignReport,
    campaign_digest,
    run_campaign,
)
from repro.faults.harden import HardeningReport, harden_schedule, straggler_nodes

__all__ = [
    "FaultPlan",
    "FaultySampler",
    "FaultyController",
    "inflate_dag",
    "EdgeMargin",
    "MarginReport",
    "robustness_margin",
    "EdgeBlame",
    "CampaignReport",
    "campaign_digest",
    "run_campaign",
    "HardeningReport",
    "harden_schedule",
    "straggler_nodes",
]
