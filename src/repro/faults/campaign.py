"""Monte-Carlo fault campaigns with dynamic race detection and blame.

A campaign executes one machine program many times under a
:class:`~repro.faults.model.FaultPlan` (``run_machine`` in
``allow_overrun`` mode), verifies every trace against the original
producer/consumer edges, and aggregates the observed order violations
into a *blame report*: which edge raced, which static proof the faults
broke, and how much margin they had to consume to break it.

Two kinds of runs are mixed:

* **random** runs sample in-interval durations uniformly and perturb
  them per the plan -- unbiased coverage of the fault envelope;
* **directed** runs target the statically weakest timing-proved edges
  (:func:`~repro.faults.margin.robustness_margin`).  For each such edge
  three deterministic adversarial witnesses are executed: one stretching
  the *producer's* stream through ``g`` to the plan's worst case with
  everything else at its minimum, one stretching every processor
  *except the consumer's*, and one stretching exactly the stream
  segments the ``T_max(g)`` bound is built from (the longest max path
  from the common dominator to ``LastBar(g)``, plus the producer's
  trailing segment).  All stay inside the plan's envelope, so a
  hardened schedule must survive them too -- they simply find the
  needle much faster than uniform sampling when the remaining slack is
  small.

Races can only ever be observed on timing-proved edges: serialized
edges are enforced by program order and PathFind/barrier edges by the
barrier hardware itself, regardless of how late any instruction runs.
A campaign that blames a non-timing edge has found a simulator or
compiler bug, and says so.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.barriers.model import Barrier
from repro.barriers.paths import PathExplosionError, k_longest_max_paths
from repro.core.barrier_insert import ResolutionKind, classify_edge, timing_quantities
from repro.core.schedule import Schedule
from repro.faults.harden import straggler_nodes
from repro.faults.margin import robustness_margin
from repro.faults.model import FaultPlan, FaultySampler, FaultyController
from repro.ir.dag import NodeId
from repro.machine.dbm import DBMController
from repro.machine.durations import UniformSampler
from repro.machine.engine import run_machine
from repro.machine.program import MachineProgram
from repro.machine.sbm import SBMController
from repro.machine.trace import DeadlockError
from repro.timing import Interval

__all__ = ["EdgeBlame", "CampaignReport", "run_campaign"]

#: Cap on how many weak edges get directed witnesses (2 runs each).
MAX_WITNESS_EDGES = 16


@dataclass(frozen=True)
class _DirectedSampler:
    """Deterministic adversarial sampler: worst case for ``slow`` nodes
    (within the plan's envelope), minimum latency for everything else."""

    plan: FaultPlan
    slow: frozenset[NodeId]
    straggler: frozenset[NodeId] = frozenset()

    def sample(self, node: NodeId, latency: Interval, rng: random.Random) -> int:
        if node in self.slow:
            return self.plan.worst_case_hi(latency, node in self.straggler)
        return latency.lo


@dataclass(frozen=True)
class EdgeBlame:
    """One raced edge, with the static proof the faults broke."""

    producer: NodeId
    consumer: NodeId
    #: Which static discharge the race falsified ("timing",
    #: "timing-optimal", or -- indicating a harness/compiler bug --
    #: "serialized"/"path"/"barrier").
    kind: str
    #: ``T_min(i-) - T_max(g)`` of the original proof (None when the
    #: edge was not timing-discharged).
    static_slack: int | None
    n_runs_violated: int
    #: Largest observed ``finish(g) - start(i)`` across violating runs.
    worst_excess: int
    #: True when only directed witness runs (not random ones) raced it.
    directed_only: bool

    @property
    def consumed_slack(self) -> int | None:
        """Total margin the faults ate: the proof's static slack plus the
        dynamic overshoot past the consumer's actual start."""
        if self.static_slack is None:
            return None
        return self.static_slack + self.worst_excess

    def describe(self) -> str:
        slack = (
            f"slack {self.static_slack} consumed (+{self.worst_excess} beyond)"
            if self.static_slack is not None
            else "non-timing edge (harness bug?)"
        )
        via = " [directed witness]" if self.directed_only else ""
        return (
            f"{self.producer!s} -> {self.consumer!s}: {self.kind} proof broken "
            f"in {self.n_runs_violated} run(s), {slack}{via}"
        )


@dataclass(frozen=True)
class CampaignReport:
    """Aggregate of one fault campaign over one program."""

    machine: str
    plan: FaultPlan
    n_random: int
    n_directed: int
    n_racy_runs: int
    n_deadlocks: int
    total_violations: int
    total_overruns: int
    blames: tuple[EdgeBlame, ...] = ()

    @property
    def n_runs(self) -> int:
        return self.n_random + self.n_directed

    @property
    def race_free(self) -> bool:
        return not self.blames and self.n_deadlocks == 0

    def render(self) -> str:
        lines = [
            f"{self.machine.upper()} fault campaign [{self.plan.describe()}]: "
            f"{self.n_runs} runs ({self.n_random} random + {self.n_directed} "
            f"directed), {self.total_overruns} overruns injected"
        ]
        if self.race_free:
            lines.append("  no races observed")
        else:
            lines.append(
                f"  RACES: {self.n_racy_runs} racy run(s), "
                f"{self.total_violations} violation(s) on "
                f"{len(self.blames)} edge(s)"
            )
            for blame in self.blames:
                lines.append(f"    {blame.describe()}")
        if self.n_deadlocks:
            lines.append(f"  DEADLOCKS: {self.n_deadlocks} run(s) hung")
        return "\n".join(lines)


@dataclass
class _EdgeTally:
    n_violated: int = 0
    worst_excess: int = 0
    from_random: bool = False


def _make_controller(program: MachineProgram, machine: str):
    if machine == "sbm":
        return SBMController(program)
    if machine == "dbm":
        return DBMController(program)
    raise ValueError(f"unknown machine {machine!r} (expected 'sbm' or 'dbm')")


def _producer_witness(schedule: Schedule, g: NodeId) -> frozenset[NodeId]:
    """The producer's stream up to and including ``g``."""
    pe, pos = schedule.position_of(g)
    return frozenset(
        item for item in schedule.streams[pe][: pos + 1]
        if not isinstance(item, Barrier)
    )


def _anti_consumer_witness(schedule: Schedule, i: NodeId) -> frozenset[NodeId]:
    """Every instruction not on the consumer's processor."""
    pe = schedule.processor_of(i)
    return frozenset(
        node for node in schedule.scheduled_nodes if schedule.processor_of(node) != pe
    )


def _chain_witness(schedule: Schedule, g: NodeId, i: NodeId) -> frozenset[NodeId]:
    """The producer's stream through ``g`` *plus* every stream segment
    along the longest max path ``dom -> LastBar(g)`` -- the exact nodes
    whose latencies the ``T_max(g)`` bound is made of.  Stretching only
    these realizes the proof's worst case on the producer side while the
    consumer side (whose bound uses minimum latencies, untouched here)
    runs as early as possible."""
    slow = set(_producer_witness(schedule, g))
    q = timing_quantities(schedule, g, i)
    if q.dom == q.last_g:
        return frozenset(slow)
    try:
        paths = k_longest_max_paths(schedule.barrier_dag(), q.dom, q.last_g)
    except PathExplosionError:
        return frozenset(slow)
    if not paths:
        return frozenset(slow)
    _, path = paths[0]
    on_path = set(zip(path, path[1:]))
    for stream in schedule.streams:
        prev: int | None = None
        segment: list[NodeId] = []
        for item in stream:
            if isinstance(item, Barrier):
                if prev is not None and (prev, item.id) in on_path:
                    slow.update(segment)
                prev = item.id
                segment = []
            else:
                segment.append(item)
    return frozenset(slow)


def run_campaign(
    schedule: Schedule,
    machine: str = "sbm",
    plan: FaultPlan | None = None,
    runs: int = 50,
    seed: int = 0,
    directed: bool = True,
    mode: str = "conservative",
) -> CampaignReport:
    """Execute a seeded fault campaign against a finished schedule.

    ``mode`` names the insertion mode the schedule was built with (it
    drives the blame classification and the directed-witness targeting).
    Deterministic for a given ``(schedule, plan, runs, seed)``.
    """
    plan = plan or FaultPlan()
    program = MachineProgram.from_schedule(schedule)
    slow = straggler_nodes(schedule, plan)
    random_sampler = FaultySampler(plan, UniformSampler(), slow)

    tallies: dict[tuple[NodeId, NodeId], _EdgeTally] = {}
    n_racy = 0
    n_deadlocks = 0
    total_violations = 0
    total_overruns = 0

    def one_run(sampler, rng, is_random: bool) -> None:
        nonlocal n_racy, n_deadlocks, total_violations, total_overruns
        controller = _make_controller(program, machine)
        if plan.barrier_jitter:
            controller = FaultyController(controller, plan, rng)
        try:
            trace = run_machine(
                program, controller, machine, sampler, rng, allow_overrun=True
            )
        except DeadlockError:
            n_deadlocks += 1
            return
        total_overruns += len(trace.overruns)
        violations = trace.verify(program.edges)
        if not violations:
            return
        n_racy += 1
        total_violations += len(violations)
        for v in violations:
            tally = tallies.setdefault((v.producer, v.consumer), _EdgeTally())
            tally.n_violated += 1
            tally.worst_excess = max(
                tally.worst_excess, v.producer_finish - v.consumer_start
            )
            tally.from_random = tally.from_random or is_random

    for k in range(runs):
        rng = random.Random(seed * 1_000_003 + k)
        one_run(random_sampler, rng, is_random=True)

    n_directed = 0
    if directed:
        margin = robustness_margin(schedule, mode)
        for k, edge in enumerate(margin.edges[:MAX_WITNESS_EDGES]):
            witnesses = (
                _producer_witness(schedule, edge.producer),
                _anti_consumer_witness(schedule, edge.consumer),
                _chain_witness(schedule, edge.producer, edge.consumer),
            )
            for w, slow_set in enumerate(witnesses):
                rng = random.Random(seed * 1_000_003 + runs + 3 * k + w)
                one_run(
                    _DirectedSampler(plan, slow_set, slow), rng, is_random=False
                )
                n_directed += 1

    blames = []
    for (g, i), tally in tallies.items():
        verdict = classify_edge(schedule, g, i, mode)
        if verdict.kind is ResolutionKind.TIMING:
            kind = "timing-optimal" if verdict.via_optimal else "timing"
            slack = timing_quantities(schedule, g, i).slack
        else:
            kind = verdict.kind.value
            slack = None
        blames.append(
            EdgeBlame(
                producer=g,
                consumer=i,
                kind=kind,
                static_slack=slack,
                n_runs_violated=tally.n_violated,
                worst_excess=tally.worst_excess,
                directed_only=not tally.from_random,
            )
        )
    blames.sort(key=lambda b: (-b.worst_excess, str(b.producer), str(b.consumer)))

    return CampaignReport(
        machine=machine,
        plan=plan,
        n_random=runs,
        n_directed=n_directed,
        n_racy_runs=n_racy,
        n_deadlocks=n_deadlocks,
        total_violations=total_violations,
        total_overruns=total_overruns,
        blames=tuple(blames),
    )
