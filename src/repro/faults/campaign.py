"""Monte-Carlo fault campaigns with dynamic race detection and blame.

A campaign executes one machine program many times under a
:class:`~repro.faults.model.FaultPlan` (``run_machine`` in
``allow_overrun`` mode), verifies every trace against the original
producer/consumer edges, and aggregates the observed order violations
into a *blame report*: which edge raced, which static proof the faults
broke, and how much margin they had to consume to break it.

Two kinds of runs are mixed:

* **random** runs sample in-interval durations uniformly and perturb
  them per the plan -- unbiased coverage of the fault envelope;
* **directed** runs target the statically weakest timing-proved edges
  (:func:`~repro.faults.margin.robustness_margin`).  For each such edge
  three deterministic adversarial witnesses are executed: one stretching
  the *producer's* stream through ``g`` to the plan's worst case with
  everything else at its minimum, one stretching every processor
  *except the consumer's*, and one stretching exactly the stream
  segments the ``T_max(g)`` bound is built from (the longest max path
  from the common dominator to ``LastBar(g)``, plus the producer's
  trailing segment).  All stay inside the plan's envelope, so a
  hardened schedule must survive them too -- they simply find the
  needle much faster than uniform sampling when the remaining slack is
  small.

Races can only ever be observed on timing-proved edges: serialized
edges are enforced by program order and PathFind/barrier edges by the
barrier hardware itself, regardless of how late any instruction runs.
A campaign that blames a non-timing edge has found a simulator or
compiler bug, and says so.
"""

from __future__ import annotations

import functools
import hashlib
import json
import multiprocessing
import pickle
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.barriers.model import Barrier
from repro.barriers.paths import PathExplosionError, k_longest_max_paths
from repro.core.barrier_insert import ResolutionKind, classify_edge, timing_quantities
from repro.core.schedule import Schedule
from repro.faults.harden import straggler_nodes
from repro.faults.margin import robustness_margin
from repro.faults.model import FaultPlan, FaultySampler, FaultyController
from repro.ir.dag import NodeId
from repro.machine.dbm import DBMController
from repro.machine.durations import UniformSampler
from repro.machine.engine import GuardPolicy, run_machine
from repro.machine.program import MachineProgram
from repro.machine.sbm import SBMController
from repro.machine.trace import DeadlockError, GuardStall
from repro.perf.parallel import fork_available, resolve_jobs
from repro.timing import Interval

if TYPE_CHECKING:  # upper layer; only the guard table is consumed
    from repro.hybrid.plan import HybridPlan

__all__ = ["EdgeBlame", "CampaignReport", "run_campaign", "campaign_digest"]

#: Cap on how many weak edges get directed witnesses (2 runs each).
MAX_WITNESS_EDGES = 16

#: Deadlock/stall messages kept verbatim on the report (they carry the
#: blamed edge and the fault-plan summary; a few are plenty).
MAX_FAILURE_NOTES = 5


@dataclass(frozen=True)
class _DirectedSampler:
    """Deterministic adversarial sampler: worst case for ``slow`` nodes
    (within the plan's envelope), minimum latency for everything else."""

    plan: FaultPlan
    slow: frozenset[NodeId]
    straggler: frozenset[NodeId] = frozenset()

    def sample(self, node: NodeId, latency: Interval, rng: random.Random) -> int:
        if node in self.slow:
            return self.plan.worst_case_hi(latency, node in self.straggler)
        return latency.lo


@dataclass(frozen=True)
class EdgeBlame:
    """One raced edge, with the static proof the faults broke."""

    producer: NodeId
    consumer: NodeId
    #: Which static discharge the race falsified ("timing",
    #: "timing-optimal", or -- indicating a harness/compiler bug --
    #: "serialized"/"path"/"barrier").
    kind: str
    #: ``T_min(i-) - T_max(g)`` of the original proof (None when the
    #: edge was not timing-discharged).
    static_slack: int | None
    n_runs_violated: int
    #: Largest observed ``finish(g) - start(i)`` across violating runs.
    worst_excess: int
    #: True when only directed witness runs (not random ones) raced it.
    directed_only: bool

    @property
    def consumed_slack(self) -> int | None:
        """Total margin the faults ate: the proof's static slack plus the
        dynamic overshoot past the consumer's actual start."""
        if self.static_slack is None:
            return None
        return self.static_slack + self.worst_excess

    def describe(self) -> str:
        slack = (
            f"slack {self.static_slack} consumed (+{self.worst_excess} beyond)"
            if self.static_slack is not None
            else "non-timing edge (harness bug?)"
        )
        via = " [directed witness]" if self.directed_only else ""
        return (
            f"{self.producer!s} -> {self.consumer!s}: {self.kind} proof broken "
            f"in {self.n_runs_violated} run(s), {slack}{via}"
        )


@dataclass(frozen=True)
class CampaignReport:
    """Aggregate of one fault campaign over one program."""

    machine: str
    plan: FaultPlan
    n_random: int
    n_directed: int
    n_racy_runs: int
    n_deadlocks: int
    total_violations: int
    total_overruns: int
    blames: tuple[EdgeBlame, ...] = ()
    #: Guard watchdog timeouts (hybrid programs only): races *detected
    #: and reported* instead of spinning forever or racing silently.
    n_stalls: int = 0
    #: Guard waits that actually fired across all runs (hybrid programs
    #: only): races the runtime *recovered* by waiting for data.
    n_guard_saves: int = 0
    #: Mean observed makespan over completed (non-deadlocked,
    #: non-stalled) runs; 0.0 when none completed.
    mean_makespan: float = 0.0
    #: First few deadlock/stall messages, verbatim (self-describing:
    #: they name the blamed edge and the active fault plan).
    failure_notes: tuple[str, ...] = ()

    @property
    def n_runs(self) -> int:
        return self.n_random + self.n_directed

    @property
    def race_free(self) -> bool:
        return not self.blames and self.n_deadlocks == 0

    @property
    def survival_rate(self) -> float:
        """Fraction of runs that finished with every edge ordered
        correctly -- no violation, no deadlock, no guard stall.
        Recovered guard waits count as survival: that is the hybrid
        runtime doing its job."""
        if self.n_runs == 0:
            return 1.0
        failed = self.n_racy_runs + self.n_deadlocks + self.n_stalls
        return (self.n_runs - failed) / self.n_runs

    def render(self) -> str:
        lines = [
            f"{self.machine.upper()} fault campaign [{self.plan.describe()}]: "
            f"{self.n_runs} runs ({self.n_random} random + {self.n_directed} "
            f"directed), {self.total_overruns} overruns injected"
        ]
        if self.race_free:
            lines.append("  no races observed")
        else:
            lines.append(
                f"  RACES: {self.n_racy_runs} racy run(s), "
                f"{self.total_violations} violation(s) on "
                f"{len(self.blames)} edge(s)"
            )
            for blame in self.blames:
                lines.append(f"    {blame.describe()}")
        if self.n_guard_saves or self.n_stalls:
            lines.append(
                f"  GUARDS: {self.n_guard_saves} recovered wait(s), "
                f"{self.n_stalls} watchdog stall(s)"
            )
        if self.n_deadlocks:
            lines.append(f"  DEADLOCKS: {self.n_deadlocks} run(s) hung")
        for note in self.failure_notes:
            lines.append(f"    {note}")
        lines.append(
            f"  survival {self.survival_rate:.0%}, "
            f"mean makespan {self.mean_makespan:.1f}"
        )
        return "\n".join(lines)


@dataclass
class _EdgeTally:
    n_violated: int = 0
    worst_excess: int = 0
    from_random: bool = False


def _make_controller(program: MachineProgram, machine: str):
    if machine == "sbm":
        return SBMController(program)
    if machine == "dbm":
        return DBMController(program)
    raise ValueError(f"unknown machine {machine!r} (expected 'sbm' or 'dbm')")


def _producer_witness(schedule: Schedule, g: NodeId) -> frozenset[NodeId]:
    """The producer's stream up to and including ``g``."""
    pe, pos = schedule.position_of(g)
    return frozenset(
        item for item in schedule.streams[pe][: pos + 1]
        if not isinstance(item, Barrier)
    )


def _anti_consumer_witness(schedule: Schedule, i: NodeId) -> frozenset[NodeId]:
    """Every instruction not on the consumer's processor."""
    pe = schedule.processor_of(i)
    return frozenset(
        node for node in schedule.scheduled_nodes if schedule.processor_of(node) != pe
    )


def _chain_witness(schedule: Schedule, g: NodeId, i: NodeId) -> frozenset[NodeId]:
    """The producer's stream through ``g`` *plus* every stream segment
    along the longest max path ``dom -> LastBar(g)`` -- the exact nodes
    whose latencies the ``T_max(g)`` bound is made of.  Stretching only
    these realizes the proof's worst case on the producer side while the
    consumer side (whose bound uses minimum latencies, untouched here)
    runs as early as possible."""
    slow = set(_producer_witness(schedule, g))
    q = timing_quantities(schedule, g, i)
    if q.dom == q.last_g:
        return frozenset(slow)
    try:
        paths = k_longest_max_paths(schedule.barrier_dag(), q.dom, q.last_g)
    except PathExplosionError:
        return frozenset(slow)
    if not paths:
        return frozenset(slow)
    _, path = paths[0]
    on_path = set(zip(path, path[1:]))
    for stream in schedule.streams:
        prev: int | None = None
        segment: list[NodeId] = []
        for item in stream:
            if isinstance(item, Barrier):
                if prev is not None and (prev, item.id) in on_path:
                    slow.update(segment)
                prev = item.id
                segment = []
            else:
                segment.append(item)
    return frozenset(slow)


@dataclass(frozen=True)
class _RunSpec:
    """One fully-determined execution: sampler, rng seed, run class."""

    sampler: object  # DurationSampler
    seed: int
    is_random: bool


@dataclass(frozen=True)
class _RunOutcome:
    """The picklable residue of one execution a worker ships back."""

    kind: str  # "ok" | "deadlock" | "stall"
    #: ``(producer, consumer, excess)`` per observed order violation.
    violations: tuple[tuple[NodeId, NodeId, int], ...]
    n_overruns: int
    makespan: int
    guard_saves: int
    is_random: bool
    note: str = ""


def _execute_spec(
    ctx: tuple[MachineProgram, str, FaultPlan, GuardPolicy | None],
    spec: _RunSpec,
) -> _RunOutcome:
    """Execute one spec (worker-side; must stay importable for pickling)."""
    program, machine, plan, guard_policy = ctx
    rng = random.Random(spec.seed)
    context = "" if plan.is_null else plan.describe()
    if program.guards:
        from repro.hybrid.controller import HybridController

        controller = HybridController.for_program(
            program, machine, guard_policy, fault_context=context
        )
    else:
        controller = _make_controller(program, machine)
    if plan.barrier_jitter:
        controller = FaultyController(controller, plan, rng)
    try:
        trace = run_machine(
            program,
            controller,
            machine,
            spec.sampler,
            rng,
            allow_overrun=True,
            guard_policy=guard_policy,
        )
    except DeadlockError as exc:
        return _RunOutcome("deadlock", (), 0, 0, 0, spec.is_random, str(exc))
    except GuardStall as exc:
        return _RunOutcome("stall", (), 0, 0, 0, spec.is_random, str(exc))
    violations = tuple(
        (v.producer, v.consumer, v.producer_finish - v.consumer_start)
        for v in trace.verify(program.edges, context)
    )
    return _RunOutcome(
        "ok",
        violations,
        len(trace.overruns),
        trace.makespan,
        trace.guard_saves,
        spec.is_random,
    )


def _execute_all(
    ctx: tuple[MachineProgram, str, FaultPlan, GuardPolicy | None],
    specs: list[_RunSpec],
    jobs: int,
) -> list[_RunOutcome]:
    """Run every spec, on a fork pool when asked and possible.

    Outcomes come back in spec order regardless of worker scheduling,
    and every per-run rng is derived from the spec's own seed, so the
    parallel path is bit-identical to the serial one (pinned by the
    digest-parity regression test, mirroring ``repro.perf.parallel``).
    """
    runner = functools.partial(_execute_spec, ctx)
    if jobs > 1 and len(specs) > 1 and fork_available():
        try:
            pickle.dumps(ctx)
        except Exception:
            return [runner(spec) for spec in specs]
        mp = multiprocessing.get_context("fork")
        chunk = max(1, len(specs) // (jobs * 4))
        with ProcessPoolExecutor(max_workers=jobs, mp_context=mp) as pool:
            return list(pool.map(runner, specs, chunksize=chunk))
    return [runner(spec) for spec in specs]


def run_campaign(
    schedule: Schedule,
    machine: str = "sbm",
    plan: FaultPlan | None = None,
    runs: int = 50,
    seed: int = 0,
    directed: bool = True,
    mode: str = "conservative",
    hybrid: "HybridPlan | None" = None,
    guard_policy: GuardPolicy | None = None,
    jobs: int | None = 1,
) -> CampaignReport:
    """Execute a seeded fault campaign against a finished schedule.

    ``mode`` names the insertion mode the schedule was built with (it
    drives the blame classification and the directed-witness targeting).
    Deterministic for a given ``(schedule, plan, runs, seed)`` --
    including under ``jobs > 1``, which fans the independent runs out
    over a fork pool (``None`` consults ``REPRO_JOBS``, ``0`` means all
    cores) and merges outcomes in submission order.

    Passing a :class:`~repro.hybrid.plan.HybridPlan` as ``hybrid``
    executes the *hybrid* program instead: the same streams and barriers
    plus the plan's dynamic guard table, run under a
    :class:`~repro.hybrid.controller.HybridController` with the
    ``guard_policy`` watchdog.  Guard recoveries and stalls are tallied
    on the report.
    """
    plan = plan or FaultPlan()
    guards = hybrid.guards if hybrid is not None else None
    program = MachineProgram.from_schedule(schedule, guards=guards)
    if machine not in ("sbm", "dbm"):
        raise ValueError(f"unknown machine {machine!r} (expected 'sbm' or 'dbm')")
    slow = straggler_nodes(schedule, plan)
    random_sampler = FaultySampler(plan, UniformSampler(), slow)

    specs: list[_RunSpec] = [
        _RunSpec(random_sampler, seed * 1_000_003 + k, is_random=True)
        for k in range(runs)
    ]
    if directed:
        margin = robustness_margin(schedule, mode)
        for k, edge in enumerate(margin.edges[:MAX_WITNESS_EDGES]):
            witnesses = (
                _producer_witness(schedule, edge.producer),
                _anti_consumer_witness(schedule, edge.consumer),
                _chain_witness(schedule, edge.producer, edge.consumer),
            )
            for w, slow_set in enumerate(witnesses):
                specs.append(
                    _RunSpec(
                        _DirectedSampler(plan, slow_set, slow),
                        seed * 1_000_003 + runs + 3 * k + w,
                        is_random=False,
                    )
                )
    n_directed = sum(1 for s in specs if not s.is_random)

    ctx = (program, machine, plan, guard_policy)
    outcomes = _execute_all(ctx, specs, resolve_jobs(jobs))

    tallies: dict[tuple[NodeId, NodeId], _EdgeTally] = {}
    n_racy = 0
    n_deadlocks = 0
    n_stalls = 0
    n_guard_saves = 0
    total_violations = 0
    total_overruns = 0
    makespans: list[int] = []
    notes: list[str] = []
    for outcome in outcomes:
        if outcome.kind == "deadlock":
            n_deadlocks += 1
            if len(notes) < MAX_FAILURE_NOTES:
                notes.append(outcome.note)
            continue
        if outcome.kind == "stall":
            n_stalls += 1
            if len(notes) < MAX_FAILURE_NOTES:
                notes.append(outcome.note)
            continue
        total_overruns += outcome.n_overruns
        n_guard_saves += outcome.guard_saves
        makespans.append(outcome.makespan)
        if not outcome.violations:
            continue
        n_racy += 1
        total_violations += len(outcome.violations)
        for g, i, excess in outcome.violations:
            tally = tallies.setdefault((g, i), _EdgeTally())
            tally.n_violated += 1
            tally.worst_excess = max(tally.worst_excess, excess)
            tally.from_random = tally.from_random or outcome.is_random

    blames = []
    for (g, i), tally in tallies.items():
        verdict = classify_edge(schedule, g, i, mode)
        if verdict.kind is ResolutionKind.TIMING:
            kind = "timing-optimal" if verdict.via_optimal else "timing"
            slack = timing_quantities(schedule, g, i).slack
        else:
            kind = verdict.kind.value
            slack = None
        blames.append(
            EdgeBlame(
                producer=g,
                consumer=i,
                kind=kind,
                static_slack=slack,
                n_runs_violated=tally.n_violated,
                worst_excess=tally.worst_excess,
                directed_only=not tally.from_random,
            )
        )
    blames.sort(key=lambda b: (-b.worst_excess, str(b.producer), str(b.consumer)))

    return CampaignReport(
        machine=machine,
        plan=plan,
        n_random=runs,
        n_directed=n_directed,
        n_racy_runs=n_racy,
        n_deadlocks=n_deadlocks,
        total_violations=total_violations,
        total_overruns=total_overruns,
        blames=tuple(blames),
        n_stalls=n_stalls,
        n_guard_saves=n_guard_saves,
        mean_makespan=sum(makespans) / len(makespans) if makespans else 0.0,
        failure_notes=tuple(notes),
    )


def campaign_digest(report: CampaignReport) -> str:
    """A stable digest of everything a campaign observed.

    Covers the run counts, every blame line, the guard tallies, and the
    mean makespan -- so any behavioural drift between the serial and
    parallel campaign paths (or across refactors that must preserve
    blame reports) changes the digest.  The determinism regression test
    pins serial vs ``jobs=N`` equality with it.
    """
    record = {
        "machine": report.machine,
        "plan": report.plan.describe(),
        "n_random": report.n_random,
        "n_directed": report.n_directed,
        "n_racy_runs": report.n_racy_runs,
        "n_deadlocks": report.n_deadlocks,
        "n_stalls": report.n_stalls,
        "n_guard_saves": report.n_guard_saves,
        "total_violations": report.total_violations,
        "total_overruns": report.total_overruns,
        "mean_makespan": report.mean_makespan,
        "failure_notes": list(report.failure_notes),
        "blames": [
            [
                str(b.producer),
                str(b.consumer),
                b.kind,
                b.static_slack,
                b.n_runs_violated,
                b.worst_excess,
                b.directed_only,
            ]
            for b in report.blames
        ],
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
