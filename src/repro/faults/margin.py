"""Static robustness margins: how much overrun a schedule tolerates.

Every discharged producer/consumer edge falls into one of two classes:

* **structurally robust** -- serialized (program order), PathFind (a
  chain of barriers), or enforced by a dedicated barrier.  The hardware
  enforces these orders *dynamically*, so no latency overrun, however
  large, can break them;
* **timing-proved** -- discharged by the step [2]-[5] inequality
  ``T_min(i-) >= T_max(g)`` alone.  Nothing at runtime enforces the
  order; the proof's margin (its *slack*) is all that stands between a
  latency overrun and a silent data race.

For a timing-proved edge with slack ``s = T_min(i-) - T_max(g)`` and
producer-side worst-case time ``T_max(g)`` (both relative to the common
dominating barrier), a uniform multiplicative stretch of every maximum
latency by ``(1 + ε)`` raises the producer side by at most
``ε * T_max(g)`` while leaving the consumer side's minimum bound intact
(minimum latencies do not change).  The edge therefore provably survives
any ``ε <= s / T_max(g)``; the schedule-level margin

    ``ε* = min over timing-proved edges of  slack / T_max(g)``

is a sound (conservative) bound on the uniform overrun the whole
schedule tolerates.  Edges rescued only by the section 4.4.2 overlap
analysis carry no conservative slack, so their margin is reported as 0:
the overlap argument couples min- and max-paths and does not survive
independent overruns.

``ε*`` is a closed-form *lower* bound; :func:`repro.faults.harden.
harden_schedule` gives the exact answer for a concrete ε by re-running
validation against the inflated DAG.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.barrier_insert import ResolutionKind, classify_edge, timing_quantities
from repro.core.schedule import Schedule
from repro.ir.dag import NodeId

__all__ = ["EdgeMargin", "MarginReport", "robustness_margin"]


@dataclass(frozen=True, slots=True)
class EdgeMargin:
    """Overrun tolerance of one timing-proved cross-processor edge."""

    producer: NodeId
    consumer: NodeId
    kind: str  # "timing" | "timing-optimal"
    slack: int
    t_max_producer: int

    @property
    def epsilon_edge(self) -> float:
        """Largest uniform max-latency stretch this edge provably survives."""
        if self.kind == "timing-optimal":
            return 0.0  # no conservative slack to spend
        if self.slack <= 0:
            return 0.0
        if self.t_max_producer <= 0:
            return math.inf
        return self.slack / self.t_max_producer

    def describe(self) -> str:
        eps = "inf" if math.isinf(self.epsilon_edge) else f"{self.epsilon_edge:.3f}"
        return (
            f"{self.producer!s} -> {self.consumer!s}: {self.kind}, "
            f"slack {self.slack}, producer T_max {self.t_max_producer}, "
            f"eps {eps}"
        )


@dataclass(frozen=True)
class MarginReport:
    """Schedule-level robustness margins (see module docstring)."""

    edges: tuple[EdgeMargin, ...]  # timing-proved edges, weakest first
    n_edges: int  # all real producer/consumer edges
    n_structural: int  # serialized + path + barrier-enforced

    @property
    def n_timing(self) -> int:
        return len(self.edges)

    @property
    def epsilon_star(self) -> float:
        """Max uniform overrun the whole schedule provably tolerates."""
        if not self.edges:
            return math.inf
        return min(e.epsilon_edge for e in self.edges)

    @property
    def weakest(self) -> EdgeMargin | None:
        return self.edges[0] if self.edges else None

    @property
    def min_slack(self) -> int | None:
        if not self.edges:
            return None
        return min(e.slack for e in self.edges)

    def render(self, limit: int = 5) -> str:
        star = (
            "inf (every edge is structurally robust)"
            if math.isinf(self.epsilon_star)
            else f"{self.epsilon_star:.3f}"
        )
        lines = [
            f"robustness margin: {self.n_edges} edges = "
            f"{self.n_structural} structural + {self.n_timing} timing-proved; "
            f"epsilon* = {star}"
        ]
        for edge in self.edges[:limit]:
            lines.append(f"  {edge.describe()}")
        if self.n_timing > limit:
            lines.append(f"  ... and {self.n_timing - limit} more timing edges")
        return "\n".join(lines)


def robustness_margin(schedule: Schedule, mode: str = "conservative") -> MarginReport:
    """Classify every edge of a *finished* schedule and measure its margin.

    ``mode`` is the insertion mode the schedule was built with -- the
    classification must match what the compiler actually relied on, or a
    conservative-failing / optimal-passing edge would be miscounted.
    """
    margins: list[EdgeMargin] = []
    structural = 0
    total = 0
    for g, i in schedule.dag.real_edges():
        total += 1
        verdict = classify_edge(schedule, g, i, mode)
        if verdict.kind is not ResolutionKind.TIMING:
            structural += 1
            continue
        q = timing_quantities(schedule, g, i)
        margins.append(
            EdgeMargin(
                producer=g,
                consumer=i,
                kind="timing-optimal" if verdict.via_optimal else "timing",
                slack=q.slack,
                t_max_producer=q.t_max_g,
            )
        )
    margins.sort(key=lambda e: (e.epsilon_edge, e.slack, str(e.producer)))
    return MarginReport(edges=tuple(margins), n_edges=total, n_structural=structural)
