"""The fault model: what can go wrong with the paper's timing assumptions.

The compiler discharges synchronizations by proving, statically, that
every instruction's runtime stays inside its ``[min,max]`` interval.
Real hardware is less polite: a cache miss or DRAM refresh stretches a
load past its budgeted maximum, an interrupt steals a few hundred cycles
from one processor, a thermally-throttled core runs every instruction
slow, and a barrier network takes a variable number of cycles to
propagate its release.  A :class:`FaultPlan` captures those four
excursion modes as an *envelope* around the static timing model:

``epsilon``
    Multiplicative latency overrun: an instruction with maximum time
    ``hi`` may take up to ``hi + floor(hi * epsilon)`` units
    (cache-miss / contention model).  Each instruction overruns
    independently with probability ``p_overrun``.
``spike_prob`` / ``spike_magnitude`` / ``spike_windows``
    Additive interrupt spikes: with probability ``spike_prob`` an
    instruction is charged an extra ``1..spike_magnitude`` units on top
    of any multiplicative overrun.  ``spike_windows`` optionally
    confines spikes to disjoint ``[start, end)`` intervals of machine
    time (an interrupt storm, a DRAM-refresh beat): an instruction is
    only spiked when its start time falls inside a window.  Windows
    must not overlap -- overlapping windows would double-count the same
    storm and are rejected at construction.
``straggler_pes`` / ``straggler_factor``
    Per-PE stragglers: instructions on the named processors see their
    ``epsilon`` budget multiplied by ``straggler_factor`` (a slow core
    is slow for *everything* it runs).
``barrier_jitter``
    Barrier-release jitter: each firing is delayed by ``0..jitter``
    units after the last arrival (:class:`FaultyController`).

Everything is bounded so that ε-hardening has a well-defined target:
:meth:`FaultPlan.worst_case_hi` is the largest duration the plan can
ever inject for a given latency interval, and :func:`inflate_dag` bakes
that bound into a new :class:`~repro.ir.dag.InstructionDAG` -- a
schedule revalidated against the inflated DAG is provably race-free
under every realization the plan can produce (barrier jitter aside,
which delays releases and is stress-tested dynamically instead; see
``docs/robustness.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.dag import InstructionDAG, NodeId
from repro.machine.durations import DurationSampler, UniformSampler
from repro.timing import Interval

__all__ = ["FaultPlan", "FaultySampler", "FaultyController", "inflate_dag"]


@dataclass(frozen=True)
class FaultPlan:
    """A bounded envelope of timing faults to inject (see module docstring)."""

    epsilon: float = 0.0
    p_overrun: float = 1.0
    spike_prob: float = 0.0
    spike_magnitude: int = 0
    spike_windows: tuple[tuple[int, int], ...] = ()
    straggler_pes: frozenset[int] = frozenset()
    straggler_factor: float = 2.0
    barrier_jitter: int = 0

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        if not 0.0 <= self.p_overrun <= 1.0:
            raise ValueError("p_overrun must be in [0, 1]")
        if not 0.0 <= self.spike_prob <= 1.0:
            raise ValueError("spike_prob must be in [0, 1]")
        if self.spike_magnitude < 0:
            raise ValueError("spike_magnitude must be >= 0")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.barrier_jitter < 0:
            raise ValueError("barrier_jitter must be >= 0")
        windows = tuple(tuple(w) for w in self.spike_windows)
        for w in windows:
            if len(w) != 2:
                raise ValueError(f"spike window {w!r} must be a (start, end) pair")
            start, end = w
            if start < 0 or end <= start:
                raise ValueError(
                    f"spike window [{start}, {end}) must satisfy 0 <= start < end"
                )
        ordered = sorted(windows)
        for (a_lo, a_hi), (b_lo, b_hi) in zip(ordered, ordered[1:]):
            if b_lo < a_hi:
                raise ValueError(
                    f"spike windows [{a_lo}, {a_hi}) and [{b_lo}, {b_hi}) overlap"
                )
        object.__setattr__(self, "spike_windows", tuple(ordered))
        # normalize so FaultPlan(straggler_pes={1}) hashes/compares sanely
        object.__setattr__(self, "straggler_pes", frozenset(self.straggler_pes))

    @property
    def is_null(self) -> bool:
        """True iff the plan can never perturb an execution."""
        return (
            self.epsilon == 0.0
            and (self.spike_prob == 0.0 or self.spike_magnitude == 0)
            and self.barrier_jitter == 0
        )

    @property
    def worst_stretch(self) -> float:
        """The largest multiplicative budget any instruction can see."""
        if self.straggler_pes:
            return self.epsilon * self.straggler_factor
        return self.epsilon

    # -- the injection envelope ------------------------------------------------

    def stretch_hi(self, hi: int, slow: bool = False) -> int:
        """Largest *multiplicative* duration for a max latency of ``hi``."""
        budget = self.epsilon * (self.straggler_factor if slow else 1.0)
        return hi + int(hi * budget)

    def worst_case_hi(self, latency: Interval, slow: bool = False) -> int:
        """Largest duration the plan can ever inject for ``latency``."""
        hi = self.stretch_hi(latency.hi, slow)
        if self.spike_prob > 0.0:
            hi += self.spike_magnitude
        return hi

    def spike_active(self, clock: int | None) -> bool:
        """Can a spike strike an instruction starting at ``clock``?

        Unwindowed plans spike anywhere; an unknown clock (legacy
        ``sample`` path) is treated as in-window so the injected
        envelope never silently shrinks below ``worst_case_hi``.
        """
        if not self.spike_windows or clock is None:
            return True
        return any(start <= clock < end for start, end in self.spike_windows)

    def perturb(
        self,
        duration: int,
        latency: Interval,
        rng: random.Random,
        slow: bool = False,
        clock: int | None = None,
    ) -> int:
        """Apply the plan's faults to one sampled in-interval duration.

        The result is always within ``[latency.lo, worst_case_hi(latency)]``
        -- faults only ever lengthen executions.  ``clock`` (the
        instruction's start time, when the engine knows it) gates
        windowed spikes; the spike rng draw is consumed either way so a
        windowed plan replays the same multiplicative stream as its
        unwindowed counterpart.
        """
        total = duration
        cap = self.stretch_hi(latency.hi, slow)
        room = cap - latency.hi
        if room > 0 and rng.random() < self.p_overrun:
            total += rng.randint(0, room)
        if (
            self.spike_prob > 0.0
            and self.spike_magnitude > 0
            and rng.random() < self.spike_prob
            and self.spike_active(clock)
        ):
            total += rng.randint(1, self.spike_magnitude)
        return total

    def sample_jitter(self, rng: random.Random) -> int:
        """Release delay for one barrier firing."""
        if self.barrier_jitter == 0:
            return 0
        return rng.randint(0, self.barrier_jitter)

    def describe(self) -> str:
        parts = [f"epsilon={self.epsilon:g} (p={self.p_overrun:g})"]
        if self.spike_prob > 0 and self.spike_magnitude > 0:
            spikes = f"spikes p={self.spike_prob:g} mag={self.spike_magnitude}"
            if self.spike_windows:
                spans = ",".join(f"[{lo},{hi})" for lo, hi in self.spike_windows)
                spikes += f" in {spans}"
            parts.append(spikes)
        if self.straggler_pes:
            pes = ",".join(str(p) for p in sorted(self.straggler_pes))
            parts.append(f"stragglers PE{{{pes}}} x{self.straggler_factor:g}")
        if self.barrier_jitter:
            parts.append(f"barrier jitter <= {self.barrier_jitter}")
        return "; ".join(parts)


@dataclass(frozen=True)
class FaultySampler:
    """Wrap any :class:`DurationSampler`, perturbing its draws per a plan.

    ``slow_nodes`` names the instructions that live on straggler
    processors (the sampler interface sees nodes, not PEs, so the caller
    resolves the plan's ``straggler_pes`` against the concrete program;
    see :func:`repro.faults.campaign.straggler_nodes`).
    """

    plan: FaultPlan
    base: DurationSampler = field(default_factory=UniformSampler)
    slow_nodes: frozenset[NodeId] = frozenset()

    @property
    def fault_context(self) -> str:
        """Plan summary stamped onto engine errors (see ``_fault_context``)."""
        return "" if self.plan.is_null else self.plan.describe()

    def sample(self, node: NodeId, latency: Interval, rng: random.Random) -> int:
        duration = self.base.sample(node, latency, rng)
        return self.plan.perturb(duration, latency, rng, node in self.slow_nodes)

    def sample_at(
        self, node: NodeId, latency: Interval, rng: random.Random, clock: int
    ) -> int:
        """Clock-aware draw: identical to :meth:`sample` except windowed
        spikes only strike when ``clock`` falls inside a spike window."""
        duration = self.base.sample(node, latency, rng)
        return self.plan.perturb(
            duration, latency, rng, node in self.slow_nodes, clock
        )


@dataclass
class FaultyController:
    """Wrap a barrier controller, jittering every release it selects.

    The inner controller (SBM FIFO or DBM associative) decides *which*
    barrier fires; the wrapper delays *when* its release reaches the
    processors, modelling a barrier network with variable propagation
    time.  Injected delays are recorded in ``jitter`` for post-mortem
    correlation.
    """

    inner: object  # BarrierController protocol
    plan: FaultPlan
    rng: random.Random
    jitter: dict[int, int] = field(default_factory=dict)

    @property
    def fault_context(self) -> str:
        """Plan summary stamped onto engine errors (see ``_fault_context``)."""
        return "" if self.plan.is_null else self.plan.describe()

    def pending(self) -> int | None:
        """Delegate queue-head diagnostics to the wrapped controller."""
        pending = getattr(self.inner, "pending", None)
        return pending() if callable(pending) else None

    def select(
        self, waiting: dict[int, int], arrival: dict[int, int]
    ) -> tuple[int, int] | None:
        choice = self.inner.select(waiting, arrival)
        if choice is None:
            return None
        barrier_id, fire_time = choice
        delay = self.plan.sample_jitter(self.rng)
        if delay:
            self.jitter[barrier_id] = delay
        return barrier_id, fire_time + delay


def inflate_dag(
    dag: InstructionDAG,
    plan: FaultPlan,
    slow_nodes: frozenset[NodeId] = frozenset(),
) -> InstructionDAG:
    """The same DAG with every max latency stretched to the plan's envelope.

    Minimum latencies are untouched (faults only lengthen executions), so
    consumer-side earliest-start bounds survive; producer-side worst-case
    bounds absorb the full fault envelope.  Re-running edge validation
    and barrier insertion against the inflated DAG is exactly the
    ε-hardening pass (:func:`repro.faults.harden.harden_schedule`).
    """
    latencies = {
        node: Interval(
            dag.latency(node).lo,
            plan.worst_case_hi(dag.latency(node), node in slow_nodes),
        )
        for node in dag.real_nodes
    }
    payload = {
        node: dag.payload(node)
        for node in dag.real_nodes
        if dag.payload(node) is not None
    }
    return InstructionDAG.build(latencies, dag.real_edges(), payload)
