"""ε-hardening: re-prove a schedule against a fault-inflated timing model.

:func:`repro.faults.margin.robustness_margin` gives a closed-form lower
bound ``ε*`` on the overrun a schedule tolerates.  This module gives the
*constructive* counterpart: take a concrete :class:`~repro.faults.model.
FaultPlan`, stretch every maximum latency to the plan's worst-case
envelope (:func:`~repro.faults.model.inflate_dag`), and re-run the
repository's own validation/repair loop against the inflated DAG.  Every
timing proof whose slack the faults could consume fails revalidation and
is replaced by an inserted barrier -- the hardware-enforced ordering
that no latency overrun can break.

The hardening pass never moves an instruction: processor assignment and
stream order are exactly the input schedule's, only barriers are added
(and, on SBM, merged to restore the FIFO no-unordered-overlap
invariant).  The price of robustness is therefore measured precisely as
*extra barriers* and the resulting makespan growth.

Soundness: the injection envelope of ``FaultPlan.perturb`` is by
construction the ``[lo, worst_case_hi]`` interval that ``inflate_dag``
bakes into the inflated DAG, so every faulty execution of the hardened
schedule is an in-interval execution of a validated schedule -- the
paper's own soundness argument then guarantees race freedom.  The one
excursion mode this does not cover is barrier-release *jitter*, which
delays barrier-enforced orderings themselves; see ``docs/robustness.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.core.validate import finalize_schedule
from repro.faults.model import FaultPlan, inflate_dag
from repro.ir.dag import NodeId
from repro.timing import Interval

__all__ = ["HardeningReport", "harden_schedule", "straggler_nodes"]


def straggler_nodes(schedule: Schedule, plan: FaultPlan) -> frozenset[NodeId]:
    """The instructions the plan's straggler processors will run slow."""
    if not plan.straggler_pes:
        return frozenset()
    return frozenset(
        node
        for node in schedule.scheduled_nodes
        if schedule.processor_of(node) in plan.straggler_pes
    )


@dataclass(frozen=True)
class HardeningReport:
    """What ε-hardening cost, and what it bought."""

    plan: FaultPlan
    schedule: Schedule  # hardened, re-bound to the *original* timing model
    barriers_before: int
    barriers_after: int
    repairs: int
    merges: int
    makespan_before: Interval  # original schedule, original latencies
    makespan_after: Interval  # hardened schedule, original latencies
    worst_case_makespan: Interval  # hardened schedule, fault-inflated latencies

    @property
    def extra_barriers(self) -> int:
        return self.barriers_after - self.barriers_before

    @property
    def makespan_overhead(self) -> float:
        """Fractional worst-case makespan growth under the original model."""
        if self.makespan_before.hi == 0:
            return 0.0
        return self.makespan_after.hi / self.makespan_before.hi - 1.0

    def render(self) -> str:
        return (
            f"hardened against {self.plan.describe()}: "
            f"{self.barriers_before} -> {self.barriers_after} barriers "
            f"(+{self.extra_barriers}), "
            f"makespan {self.makespan_before} -> {self.makespan_after} "
            f"(+{self.makespan_overhead:.1%} worst case), "
            f"faulty worst case {self.worst_case_makespan.hi}"
        )


def harden_schedule(
    schedule: Schedule,
    epsilon: float | None = None,
    *,
    plan: FaultPlan | None = None,
    mode: str = "conservative",
    merge: bool = False,
) -> HardeningReport:
    """Insert the barriers needed to survive a fault plan's worst case.

    Either pass a bare ``epsilon`` (uniform multiplicative overrun) or a
    full :class:`FaultPlan`.  ``mode`` and ``merge`` should match how the
    input schedule was built (``merge=True`` for SBM targets, so the
    hardened schedule re-establishes the FIFO queue-consistency
    invariant against the *inflated* fire windows).

    The input schedule is never mutated; the hardened copy is returned
    re-bound to the original DAG so downstream code (simulation, margin
    analysis, program extraction) sees the paper's timing model.
    """
    if plan is None:
        if epsilon is None:
            raise ValueError("harden_schedule needs either epsilon or a FaultPlan")
        plan = FaultPlan(epsilon=epsilon)
    elif epsilon is not None and epsilon != plan.epsilon:
        raise ValueError("pass either epsilon or plan, not conflicting both")

    slow = straggler_nodes(schedule, plan)
    inflated = inflate_dag(schedule.dag, plan, slow)

    makespan_before = schedule.makespan()
    barriers_before = len(schedule.barriers())

    # Re-bind the same placement to the inflated timing model and let the
    # standard repair loop re-prove every edge, inserting barriers where
    # the fault envelope ate the slack.
    hardened = schedule.with_dag(inflated)
    repairs, merges = finalize_schedule(hardened, mode, merge)
    worst_case = hardened.makespan()

    # Back to the original model for downstream consumers.
    result = hardened.with_dag(schedule.dag)
    return HardeningReport(
        plan=plan,
        schedule=result,
        barriers_before=barriers_before,
        barriers_after=len(result.barriers()),
        repairs=repairs,
        merges=merges,
        makespan_before=makespan_before,
        makespan_after=result.makespan(),
        worst_case_makespan=worst_case,
    )
