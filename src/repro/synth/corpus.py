"""Corpus driver: generate -> compile -> DAG, reproducibly and in bulk.

The paper's evaluation averages 100 synthetic benchmarks per parameter
point and exceeds 3500 benchmarks overall.  :func:`generate_cases` streams
:class:`BenchmarkCase` objects -- each a fully compiled basic block with
its optimized tuple program and instruction DAG -- from a master seed, so
every experiment in :mod:`repro.experiments` is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.ir import (
    BasicBlock,
    DEFAULT_TIMING,
    InstructionDAG,
    TimingModel,
    TupleProgram,
    generate_tuples,
    optimize,
)
from repro.synth.generator import GeneratorConfig, generate_block

__all__ = ["BenchmarkCase", "generate_cases", "generate_corpus"]


@dataclass(frozen=True)
class BenchmarkCase:
    """One synthetic benchmark, carried through the whole front end."""

    seed: int
    config: GeneratorConfig
    block: BasicBlock
    raw_program: TupleProgram
    program: TupleProgram  # after optimization
    dag: InstructionDAG

    @property
    def implied_synchronizations(self) -> int:
        return self.dag.implied_synchronizations

    @property
    def n_instructions(self) -> int:
        return len(self.program)

    def describe(self) -> str:
        return (
            f"seed={self.seed} stmts={self.config.n_statements} "
            f"vars={self.config.n_variables} instrs={self.n_instructions} "
            f"syncs={self.implied_synchronizations}"
        )


def compile_case(
    config: GeneratorConfig,
    seed: int,
    timing: TimingModel = DEFAULT_TIMING,
) -> BenchmarkCase:
    """Generate and compile a single benchmark from ``(config, seed)``."""
    block = generate_block(config, random.Random(seed))
    raw = generate_tuples(block)
    opt = optimize(raw)
    dag = InstructionDAG.from_program(opt, timing)
    return BenchmarkCase(seed, config, block, raw, opt, dag)


def generate_cases(
    config: GeneratorConfig,
    count: int,
    master_seed: int = 0,
    timing: TimingModel = DEFAULT_TIMING,
    accept: Callable[[BenchmarkCase], bool] | None = None,
    max_attempts_factor: int = 50,
) -> Iterator[BenchmarkCase]:
    """Yield ``count`` compiled benchmarks derived from ``master_seed``.

    ``accept`` optionally filters cases (e.g. figure 14 keeps only blocks
    with 65..132 implied synchronizations); rejected cases are skipped and
    replaced, up to ``count * max_attempts_factor`` attempts.
    """
    produced = 0
    attempts = 0
    limit = max(1, count) * max_attempts_factor
    seed_stream = random.Random(master_seed)
    while produced < count:
        if attempts >= limit:
            raise RuntimeError(
                f"corpus filter accepted only {produced}/{count} cases "
                f"after {attempts} attempts"
            )
        attempts += 1
        case_seed = seed_stream.getrandbits(48)
        case = compile_case(config, case_seed, timing)
        if accept is not None and not accept(case):
            continue
        produced += 1
        yield case


def generate_corpus(
    config: GeneratorConfig,
    count: int,
    master_seed: int = 0,
    timing: TimingModel = DEFAULT_TIMING,
    accept: Callable[[BenchmarkCase], bool] | None = None,
) -> list[BenchmarkCase]:
    """Materialized convenience wrapper around :func:`generate_cases`."""
    return list(generate_cases(config, count, master_seed, timing, accept))
