"""Random basic-block generator (the paper's C synthesis program, in Python).

Section 2.2: "A C program was developed to randomly generate the basic
blocks ... This program requires as input the number of statements,
variables, and constants desired in the generated code.  It then generates
a random sequence of assignment statements satisfying the desired
conditions.  The frequency of the assignment statements corresponds
loosely to the instruction frequency distributions found in [AlWo75]."

Our generator reproduces that contract:

* ``n_statements`` assignment statements over ``n_variables`` variables
  (named ``v0 .. v{n-1}``) and a pool of ``n_constants`` integer literals;
* each right-hand side draws its operator from the Table 1 frequency
  distribution (Add 45.8%, Sub 33.9%, And 8.8%, Or 5.2%, Mul 2.9%,
  Div 2.2%, Mod 1.2%);
* operands are variables, or constants with probability
  ``p_constant_operand``;
* optionally (``p_nested``) an operand recursively expands into another
  operation, approximating larger expression trees.

All randomness flows through one explicit ``random.Random``, so every
benchmark is reproducible from ``(config, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ir.ast import Assign, BasicBlock, BinOp, Const, Expr, Var
from repro.ir.ops import ALU_OPCODES, OP_FREQUENCIES, Opcode

__all__ = ["GeneratorConfig", "generate_block"]

_OP_WEIGHTS: tuple[float, ...] = tuple(OP_FREQUENCIES[op] for op in ALU_OPCODES)


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the random program generator.

    The paper varies ``n_statements`` from 5 to 60 (up to 100 in the
    processor sweep) and ``n_variables`` from 2 to 15; the number of
    variables "corresponds roughly to the parallelism width of the
    generated benchmark after optimization".
    """

    n_statements: int = 20
    n_variables: int = 8
    n_constants: int = 4
    #: Probability that an operand position holds a constant rather than a
    #: variable.  Kept modest so most dependences are variable-to-variable,
    #: as in the paper's examples (figure 1 has no constant operands).
    p_constant_operand: float = 0.12
    #: Probability that an operand expands into a nested operation; 0 gives
    #: exactly one ALU op per statement as in the figure 1 benchmark.
    p_nested: float = 0.0
    #: Maximum expression depth when ``p_nested > 0``.
    max_depth: int = 3
    #: Inclusive range constants are drawn from.
    constant_range: tuple[int, int] = (0, 255)

    def __post_init__(self) -> None:
        if self.n_statements < 1:
            raise ValueError("n_statements must be >= 1")
        if self.n_variables < 1:
            raise ValueError("n_variables must be >= 1")
        if self.n_constants < 1:
            raise ValueError("n_constants must be >= 1")
        if not 0.0 <= self.p_constant_operand <= 1.0:
            raise ValueError("p_constant_operand must be in [0, 1]")
        if not 0.0 <= self.p_nested < 1.0:
            raise ValueError("p_nested must be in [0, 1)")
        if self.constant_range[0] > self.constant_range[1]:
            raise ValueError("constant_range must be (lo, hi) with lo <= hi")

    def variable_names(self) -> tuple[str, ...]:
        return tuple(f"v{i}" for i in range(self.n_variables))


def _draw_opcode(rng: random.Random) -> Opcode:
    return rng.choices(ALU_OPCODES, weights=_OP_WEIGHTS, k=1)[0]


def _draw_operand(
    config: GeneratorConfig,
    rng: random.Random,
    variables: tuple[str, ...],
    constants: tuple[int, ...],
    depth: int,
) -> Expr:
    if depth < config.max_depth and rng.random() < config.p_nested:
        return _draw_operation(config, rng, variables, constants, depth + 1)
    if rng.random() < config.p_constant_operand:
        return Const(rng.choice(constants))
    return Var(rng.choice(variables))


def _draw_operation(
    config: GeneratorConfig,
    rng: random.Random,
    variables: tuple[str, ...],
    constants: tuple[int, ...],
    depth: int,
) -> BinOp:
    op = _draw_opcode(rng)
    left = _draw_operand(config, rng, variables, constants, depth)
    right = _draw_operand(config, rng, variables, constants, depth)
    return BinOp(op, left, right)


def generate_block(config: GeneratorConfig, rng: random.Random | int) -> BasicBlock:
    """Generate one random basic block.

    ``rng`` may be a ``random.Random`` or a bare integer seed.  The same
    ``(config, seed)`` pair always yields the identical block.
    """
    if isinstance(rng, int):
        rng = random.Random(rng)
    variables = config.variable_names()
    lo, hi = config.constant_range
    constants = tuple(rng.randint(lo, hi) for _ in range(config.n_constants))

    statements = []
    for _ in range(config.n_statements):
        target = rng.choice(variables)
        expr = _draw_operation(config, rng, variables, constants, depth=1)
        statements.append(Assign(target, expr))
    return BasicBlock(tuple(statements))
