"""Synthetic-benchmark generation (paper section 2.2).

Random basic blocks of assignment statements with the [AlWo75]
instruction-mix frequencies of Table 1, plus a corpus driver that
compiles each block through the :mod:`repro.ir` pipeline.
"""

from repro.synth.generator import GeneratorConfig, generate_block
from repro.synth.corpus import BenchmarkCase, generate_cases, generate_corpus
from repro.synth.flowgen import FlowGeneratorConfig, generate_flow_program

__all__ = [
    "GeneratorConfig",
    "generate_block",
    "BenchmarkCase",
    "generate_cases",
    "generate_corpus",
    "FlowGeneratorConfig",
    "generate_flow_program",
]
