"""Vectorized corpus generation: one numpy pass for a whole seed batch.

The per-block python path (:func:`repro.synth.corpus.compile_case`) walks
``random.Random`` draw by draw, builds an AST, lowers it to tuples, and
runs the three optimizer passes to a fixpoint -- per benchmark.  At
paper scale (100 benchmarks per point, 3500+ overall) that front end
dominates corpus wall time.  This module replaces it with two stages
that are *bit-identical* by construction:

* :class:`_VecRng` -- ``C`` independent Mersenne-Twister streams as a
  ``(C, 624)`` uint32 state matrix, twisted and tempered with numpy.
  Each stream is seeded from ``random.Random(seed).getstate()``, so
  stream ``k`` emits exactly the words ``random.Random(seeds[k])``
  would.  On top sit vectorized replicas of the CPython consumption
  contracts the generator uses -- ``random()`` (two words),
  ``getrandbits`` (one word, top bits), ``_randbelow`` (masked
  rejection loop), ``choices`` (cumulative-weight bisection) -- so the
  *sequence of draws per stream* matches ``generate_block`` exactly.

* a fused front end -- code generation, constant folding, CSE and DCE
  in one pass over the drawn arrays.  The sequential pipeline reaches
  its fixpoint after a single round on generator output (folding can
  only fire on generator constants, CSE never creates new immediates,
  DCE only deletes), so the fused pass forwards each variable's
  fold+CSE-resolved value through the environment and reproduces the
  optimized program -- including the raw tuple numbering with gaps --
  without ever materializing the AST or the unoptimized program.

Dispatch rides the existing kernel machinery: ``REPRO_BACKEND`` and
``THRESHOLDS["genvec"]`` decide per batch, every decision is counted
under ``kernels.calls.genvec.*``, and ``REPRO_CHECK_KERNELS=1``
cross-checks every vectorized case against :func:`compile_case`.

Blocks with ``p_nested > 0`` recurse into variable-depth expression
trees; those fall back to the python generator (``supported``).
"""

from __future__ import annotations

import random
from itertools import accumulate

from repro import kernels
from repro.obs import prof as obs_prof
from repro.ir.ast import apply_op
from repro.ir.dag import ENTRY, EXIT, InstructionDAG, _topological_order
from repro.timing import ZERO
from repro.ir.ops import (
    ALU_OPCODES,
    COMMUTATIVE_OPCODES,
    DEFAULT_TIMING,
    OP_FREQUENCIES,
    Opcode,
    TimingModel,
)
from repro.ir.tuples import Imm, IRTuple, Ref, TupleProgram
from repro.synth.corpus import BenchmarkCase, compile_case
from repro.synth.generator import GeneratorConfig, generate_block

__all__ = ["DrawnCorpus", "compile_cases", "draw_corpus", "supported"]

_OP_WEIGHTS = tuple(OP_FREQUENCIES[op] for op in ALU_OPCODES)
#: ``itertools.accumulate`` exactly as ``random.choices`` builds it, so
#: the float comparisons below see bit-identical cumulative weights.
_OP_CUM = tuple(accumulate(_OP_WEIGHTS))
_OP_TOTAL = _OP_CUM[-1] + 0.0

_UPPER = 0x80000000
_LOWER = 0x7FFFFFFF
_MAG = 0x9908B0DF

#: ``randbelow`` rejection window: words gathered per stream per round.
_W = 16


def supported(config: GeneratorConfig) -> bool:
    """True when the vectorized generator covers this configuration."""
    return config.p_nested == 0.0


#: Initial MT state matrices keyed by the seed tuple.  Seeding a
#: CPython ``Random`` per stream costs more than a whole corpus draw,
#: and every sweep point of a preset draws the *same* attempt seeds
#: (count and master seed are fixed across points) -- one cached
#: matrix serves the entire sweep, copied per corpus.
_STATE_CACHE: dict[tuple, "object"] = {}
_STATE_CACHE_MAX = 8


def _initial_states(np, seeds):
    key = tuple(seeds)
    states = _STATE_CACHE.get(key)
    if states is None:
        states = np.empty((len(seeds), 624), dtype=np.uint32)
        for k, seed in enumerate(seeds):
            # getstate()[1] is the 624-word state plus the output index;
            # a fresh Random starts exhausted (index 624).
            states[k] = random.Random(seed).getstate()[1][:624]
        while len(_STATE_CACHE) >= _STATE_CACHE_MAX:  # drop oldest
            _STATE_CACHE.pop(next(iter(_STATE_CACHE)))
        _STATE_CACHE[key] = states
    return states.copy()


class _VecRng:
    """``C`` Mersenne-Twister streams, draw-for-draw equal to CPython's.

    All consumption methods take a ``rows`` index array selecting the
    streams that draw this step; a stream not selected consumes
    nothing, which is how the data-dependent draw patterns of
    ``generate_block`` (constant vs variable operands, rejection
    loops) stay aligned per stream.
    """

    def __init__(self, np, seeds) -> None:
        self._np = np
        self._mt = _initial_states(np, seeds)
        # Never read before _refill writes it: streams start exhausted
        # (pos 624), so the first consumption of any stream twists and
        # re-tempers its whole block.  No zeroing needed.
        self._buf = np.empty_like(self._mt)
        # Flat view + per-stream word base: ``_flat[rows * 624 + pos]``
        # gathers one word per stream in a single take instead of a 2-D
        # fancy index; ``_buf[exhausted] = ...`` writes through to it.
        self._flat = self._buf.reshape(-1)
        self._pos = np.full(len(seeds), 624, dtype=np.int64)
        self._win = np.arange(_W, dtype=np.int64)  # randbelow window

    def _twist(self, mt) -> None:
        np = self._np
        y = (mt[:, :623] & np.uint32(_UPPER)) | (mt[:, 1:] & np.uint32(_LOWER))
        mag = np.where((y & np.uint32(1)).astype(bool), np.uint32(_MAG), np.uint32(0))
        # The three chunks mirror the in-place genrand loop: indices
        # below 227 read original state, the rest read already-updated
        # words, and the wrap-around element blends both.
        mt[:, 0:227] = mt[:, 397:624] ^ (y[:, 0:227] >> np.uint32(1)) ^ mag[:, 0:227]
        mt[:, 227:454] = mt[:, 0:227] ^ (y[:, 227:454] >> np.uint32(1)) ^ mag[:, 227:454]
        mt[:, 454:623] = mt[:, 227:396] ^ (y[:, 454:623] >> np.uint32(1)) ^ mag[:, 454:623]
        y_last = (mt[:, 623] & np.uint32(_UPPER)) | (mt[:, 0] & np.uint32(_LOWER))
        mag_last = np.where(
            (y_last & np.uint32(1)).astype(bool), np.uint32(_MAG), np.uint32(0)
        )
        mt[:, 623] = mt[:, 396] ^ (y_last >> np.uint32(1)) ^ mag_last

    def _temper(self, mt):
        np = self._np
        y = mt.copy()
        y ^= y >> np.uint32(11)
        y ^= (y << np.uint32(7)) & np.uint32(0x9D2C5680)
        y ^= (y << np.uint32(15)) & np.uint32(0xEFC60000)
        y ^= y >> np.uint32(18)
        return y

    def _refill(self, exhausted) -> None:
        block = self._mt[exhausted]
        self._twist(block)
        self._mt[exhausted] = block
        self._buf[exhausted] = self._temper(block)
        self._pos[exhausted] = 0

    def _words(self, rows):
        """One 32-bit output word per selected stream."""
        pos = self._pos[rows]
        exhausted = rows[pos == 624]
        if exhausted.size:
            self._refill(exhausted)
            pos = self._pos[rows]
        out = self._flat[rows * 624 + pos]
        self._pos[rows] = pos + 1
        return out

    def skip(self, rows, n_words: int) -> None:
        """Consume ``n_words`` words per stream without tempering them.

        Draws whose *values* are discarded (the ``p_nested == 0`` gate
        still burns its words) only need the positions advanced; the
        skipped words were already tempered wholesale at twist time, so
        nothing is lost.  ``n_words`` must be <= 624 (one boundary).
        """
        pos = self._pos[rows] + n_words
        crossed = pos > 624
        over = rows[crossed]
        if over.size:
            self._refill(over)  # twist now; the wrapped words come
            pos = pos - crossed * 624  # from the fresh block
        self._pos[rows] = pos

    def random(self, rows):
        """``random()``: 53-bit doubles from two words, CPython layout."""
        np = self._np
        pos = self._pos[rows]
        if (pos > 622).any():
            # A stream is at (or crossing) the block boundary: take the
            # word-at-a-time path, which twists lazily per word.
            a = (self._words(rows) >> np.uint32(5)).astype(np.float64)
            b = (self._words(rows) >> np.uint32(6)).astype(np.float64)
        else:
            flat = rows * 624 + pos
            a = (self._flat[flat] >> np.uint32(5)).astype(np.float64)
            b = (self._flat[flat + 1] >> np.uint32(6)).astype(np.float64)
            self._pos[rows] = pos + 2
        return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)

    def skip2_random(self, rows):
        """``skip(rows, 2)`` followed by :meth:`random`, fused.

        The discarded-gate + gate-value pattern of ``_draw_operand``
        consumes four words per stream; only the last two are gathered.
        """
        np = self._np
        pos = self._pos[rows]
        if (pos > 620).any():
            self.skip(rows, 2)
            return self.random(rows)
        flat = rows * 624 + pos
        a = (self._flat[flat + 2] >> np.uint32(5)).astype(np.float64)
        b = (self._flat[flat + 3] >> np.uint32(6)).astype(np.float64)
        self._pos[rows] = pos + 4
        return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)

    def getrandbits(self, rows, k: int):
        """``getrandbits(k)`` for ``1 <= k <= 32``: one word, top bits."""
        return self._words(rows) >> self._np.uint32(32 - k)

    def randbelow(self, rows, n: int):
        """``_randbelow(n)``: per-stream rejection until the draw fits.

        ``bit_length`` rounds *up*, so acceptance sits between 0.5 and
        1.0 -- for the power-of-two sizes the paper shapes use it is
        exactly 0.5, and a word-at-a-time rejection loop averages ~7
        ever-smaller redraw rounds per call.  Instead, gather the next
        ``_W`` words of every stream in one 2-D take and locate each
        stream's first acceptable word with ``argmax``; positions
        advance by exactly the words CPython's loop would consume
        (rejections included), and the unreached window tail stays
        unconsumed.  With acceptance >= 0.5 a 16-word window leaves a
        stream unresolved with probability <= 2**-16, so the loop all
        but always finishes in one round (plus cheap single-word
        rounds for streams within a window of their block edge).
        """
        np = self._np
        k = n.bit_length()
        shift = np.uint32(32 - k)
        out = np.empty(len(rows), dtype=np.int64)
        idx = np.arange(len(rows))  # slots of ``out`` still undecided
        sub = rows
        while idx.size:
            pos = self._pos[sub]
            exhausted = sub[pos == 624]
            if exhausted.size:
                self._refill(exhausted)
                pos = self._pos[sub]
            near = pos > 624 - _W
            if near.any():
                # Streams whose window would cross the twist boundary
                # step one word; a round later they are freshly
                # refilled and take the window path.
                far = ~near
                nsub, nidx, npos = sub[near], idx[near], pos[near]
                draw = self._flat[nsub * 624 + npos] >> shift
                self._pos[nsub] = npos + 1
                ok = draw < n
                out[nidx[ok]] = draw[ok]
                bad = ~ok
                pend_sub, pend_idx = nsub[bad], nidx[bad]
                sub, idx, pos = sub[far], idx[far], pos[far]
            else:
                pend_sub = pend_idx = None
            if idx.size:
                base = sub * 624 + pos
                win = self._flat[base[:, None] + self._win] >> shift
                okm = win < n
                first = okm.argmax(axis=1)
                has = okm.any(axis=1)
                # No accept in the window: all _W words are consumed.
                self._pos[sub] = pos + np.where(has, first + 1, _W)
                vals = win[np.arange(len(sub)), first]
                out[idx[has]] = vals[has]
                bad = ~has
                sub, idx = sub[bad], idx[bad]
            if pend_sub is not None:
                sub = np.concatenate((sub, pend_sub))
                idx = np.concatenate((idx, pend_idx))
        return out

    def choice_weighted(self, rows):
        """``choices(ALU_OPCODES, weights, k=1)``: one double, bisected."""
        np = self._np
        cut = self.random(rows) * _OP_TOTAL
        cum = np.asarray(_OP_CUM, dtype=np.float64)
        idx = np.searchsorted(cum, cut, side="right")
        # choices() bisects with hi = n - 1, clamping the last bucket.
        return np.minimum(idx, len(_OP_CUM) - 1)


class DrawnCorpus:
    """The raw draws of a seed batch, as plain python lists per case.

    ``operand_kind`` is 1 where an operand position drew a constant (its
    index then points into ``constants``), 0 for a variable index.  The
    arrays are exactly what the fused front end and the shared-memory
    corpus arena consume; no RNG state survives into them.
    """

    __slots__ = ("seeds", "constants", "targets", "ops", "operand_kind", "operand_idx")

    def __init__(self, seeds, constants, targets, ops, operand_kind, operand_idx):
        self.seeds = seeds
        self.constants = constants
        self.targets = targets
        self.ops = ops
        self.operand_kind = operand_kind
        self.operand_idx = operand_idx

    def __len__(self) -> int:
        return len(self.seeds)

    def arrays(self) -> dict:
        """Name -> numpy array view, the shared-memory arena payload."""
        np = kernels.numpy()
        return {
            "seeds": np.asarray(self.seeds, dtype=np.uint64),
            "constants": np.asarray(self.constants, dtype=np.int64),
            "targets": np.asarray(self.targets, dtype=np.int64),
            "ops": np.asarray(self.ops, dtype=np.int64),
            "operand_kind": np.asarray(self.operand_kind, dtype=np.int64),
            "operand_idx": np.asarray(self.operand_idx, dtype=np.int64),
        }

    @classmethod
    def from_arrays(cls, arrays: dict) -> "DrawnCorpus":
        return cls(
            [int(s) for s in arrays["seeds"].tolist()],
            arrays["constants"].tolist(),
            arrays["targets"].tolist(),
            arrays["ops"].tolist(),
            arrays["operand_kind"].tolist(),
            arrays["operand_idx"].tolist(),
        )


def draw_corpus(config: GeneratorConfig, seeds) -> DrawnCorpus:
    """Draw every random decision of ``generate_block`` for all seeds.

    Stream ``k`` consumes its underlying Mersenne-Twister words in
    exactly the order ``generate_block(config, random.Random(seeds[k]))``
    would, so the drawn values are identical case by case.
    """
    np = kernels.numpy()
    rng = _VecRng(np, seeds)
    n_cases = len(seeds)
    all_rows = np.arange(n_cases)
    n_stmts = config.n_statements
    lo, hi = config.constant_range
    width = hi - lo + 1

    constants = np.empty((n_cases, config.n_constants), dtype=np.int64)
    for j in range(config.n_constants):
        # randint(lo, hi) == lo + _randbelow(hi - lo + 1), drawn even
        # when the range is a single value (the rejection loop still
        # consumes words for width 1).
        constants[:, j] = lo + rng.randbelow(all_rows, width)

    targets = np.empty((n_cases, n_stmts), dtype=np.int64)
    ops = np.empty((n_cases, n_stmts), dtype=np.int64)
    operand_kind = np.zeros((n_cases, n_stmts, 2), dtype=np.int64)
    operand_idx = np.empty((n_cases, n_stmts, 2), dtype=np.int64)

    # _draw_operand consumes its p_nested gate draw whenever recursion
    # is *possible* (depth < max_depth), even though p_nested == 0
    # means it never fires.  Top-level operands sit at depth 1.
    nested_gate = 1 < config.max_depth

    for s in range(n_stmts):
        targets[:, s] = rng.randbelow(all_rows, config.n_variables)
        ops[:, s] = rng.choice_weighted(all_rows)
        for side in (0, 1):
            if nested_gate:
                # The gate value is discarded when p_nested == 0 (the
                # only shape ``supported`` admits); burn its two words
                # and gather only the constant-vs-variable draw.
                gate = rng.skip2_random(all_rows)
            else:
                gate = rng.random(all_rows)
            is_const = gate < config.p_constant_operand
            const_rows = all_rows[is_const]
            var_rows = all_rows[~is_const]
            operand_kind[const_rows, s, side] = 1
            if const_rows.size:
                operand_idx[const_rows, s, side] = rng.randbelow(
                    const_rows, config.n_constants
                )
            if var_rows.size:
                operand_idx[var_rows, s, side] = rng.randbelow(
                    var_rows, config.n_variables
                )

    prof = obs_prof.current_profiler()
    if prof is not None:
        prof.add_bytes(
            "genvec.drawn",
            constants.nbytes
            + targets.nbytes
            + ops.nbytes
            + operand_kind.nbytes
            + operand_idx.nbytes,
        )
    return DrawnCorpus(
        [int(s) for s in seeds],
        constants.tolist(),
        targets.tolist(),
        ops.tolist(),
        operand_kind.tolist(),
        operand_idx.tolist(),
    )


#: Commutative ALU opcodes as indices into :data:`ALU_OPCODES` -- the
#: fused loop keys its CSE table on the int (C-level hash) rather than
#: the enum member (python-level ``__hash__`` on every dict probe).
_COMMUTATIVE_IDX = frozenset(
    i for i, op in enumerate(ALU_OPCODES) if op in COMMUTATIVE_OPCODES
)

#: Interned ``Ref(id=N)`` reprs: every case re-derives the same few
#: hundred strings for CSE's commutative-operand ordering, so build
#: each once.  The table grows in blocks to whatever id range the
#: largest case needs.
_REF_REPRS: list[str] = []


def _ref_repr(tid: int) -> str:
    table = _REF_REPRS
    if tid >= len(table):
        table.extend(
            f"Ref(id={i})" for i in range(len(table), tid + 256)
        )
    return table[tid]


_new = object.__new__
_setattr = object.__setattr__


def _fast_tuple(tid, opcode, operands, var=None) -> IRTuple:
    """Construct an IRTuple skipping ``__post_init__`` shape checks.

    The fused pass builds tuples shape-correct by construction (Loads
    get no operands and a var, ALUs exactly two operands, Stores one),
    so the per-tuple validation is pure overhead here.  Equality and
    hashing are field-based and unaffected.
    """
    t = _new(IRTuple)
    _setattr(t, "id", tid)
    _setattr(t, "opcode", opcode)
    _setattr(t, "operands", operands)
    _setattr(t, "var", var)
    return t


def _compile_drawn(
    config: GeneratorConfig,
    seed: int,
    constants,
    targets,
    stmt_ops,
    stmt_kinds,
    stmt_idxs,
    variables,
    t_load,
    t_store,
    alu_timing,
) -> "VecCase":
    """Fused codegen + fold + CSE + DCE over one case's drawn arrays.

    Raw tuple ids are simulated exactly as :class:`CodeGenerator`
    assigns them -- a Load id on a variable's first read, one ALU id
    and one Store id per statement -- so the surviving tuples carry
    the same gappy numbering the sequential pipeline produces.

    Operands travel as ``(kind, payload, repr)`` triples: the cached
    third element is the dataclass repr CSE sorts commutative operands
    by, computed once per distinct operand instead of per use.
    """
    env: dict[int, tuple] = {}  # var index -> ("i", v, repr) | ("r", id, repr)
    next_id = 0
    loads: list[tuple[int, int]] = []  # (id, var index), emission order
    alus: dict[int, tuple] = {}  # id -> (op index, left, right), kept only
    cse_seen: dict = {}
    last_store: dict[int, tuple] = {}  # var index -> (store id, value)
    const_ops = [("i", v, f"Imm(value={v})") for v in constants]
    # Locals for every attribute/global the statement loop touches;
    # this function is the per-case floor of the batched pipeline.
    env_get = env.get
    cse_get = cse_seen.get
    loads_append = loads.append
    commutative = _COMMUTATIVE_IDX
    ref_repr = _ref_repr

    for s, target in enumerate(targets):
        kinds = stmt_kinds[s]
        idxs = stmt_idxs[s]
        if kinds[0]:
            left = const_ops[idxs[0]]
        else:
            left = env_get(idxs[0])
            if left is None:
                left = ("r", next_id, ref_repr(next_id))
                loads_append((next_id, idxs[0]))
                env[idxs[0]] = left
                next_id += 1
        if kinds[1]:
            right = const_ops[idxs[1]]
        else:
            right = env_get(idxs[1])
            if right is None:
                right = ("r", next_id, ref_repr(next_id))
                loads_append((next_id, idxs[1]))
                env[idxs[1]] = right
                next_id += 1
        op_idx = stmt_ops[s]
        alu_id = next_id
        next_id += 1
        if left[0] == "i" and right[0] == "i":
            # fold_constants: the whole subexpression collapses to an
            # immediate and the ALU tuple is never kept.
            folded = apply_op(ALU_OPCODES[op_idx], left[1], right[1])
            value = ("i", folded, f"Imm(value={folded})")
        else:
            # sorted(key=repr) is stable, so ties keep (left, right).
            if op_idx in commutative and right[2] < left[2]:
                key = (op_idx, right, left)
            else:
                key = (op_idx, left, right)
            value = cse_get(key)
            if value is None:
                value = ("r", alu_id, ref_repr(alu_id))
                cse_seen[key] = value
                alus[alu_id] = (op_idx, left, right)
        store_id = next_id
        next_id += 1
        last_store[target] = (store_id, value)
        env[target] = value

    # eliminate_dead_code: only the last store per variable is
    # observable; walk its references backwards for liveness.
    live: set[int] = set()
    stack = [value[1] for _, value in last_store.values() if value[0] == "r"]
    while stack:
        tid = stack.pop()
        if tid in live:
            continue
        live.add(tid)
        kept = alus.get(tid)
        if kept is not None:
            for operand in (kept[1], kept[2]):
                if operand[0] == "r":
                    stack.append(operand[1])

    memo: dict = {}

    def _operand(value):
        op = memo.get(value)
        if op is None:
            memo[value] = op = Ref(value[1]) if value[0] == "r" else Imm(value[1])
        return op

    # (id, int refs, tuple) records; the fused pass knows every ref as
    # an int already, sparing the ``IRTuple.refs`` isinstance walk when
    # the DAG is assembled below.
    records: list[tuple] = []
    for load_id, var_idx in loads:
        if load_id in live:
            records.append(
                (
                    load_id,
                    (),
                    _fast_tuple(load_id, Opcode.LOAD, (), variables[var_idx]),
                    t_load,
                )
            )
    for alu_id, (op_idx, left, right) in alus.items():
        if alu_id in live:
            if left[0] == "r":
                refs = (left[1], right[1]) if right[0] == "r" else (left[1],)
            else:
                refs = (right[1],)
            records.append(
                (
                    alu_id,
                    refs,
                    _fast_tuple(
                        alu_id, ALU_OPCODES[op_idx], (_operand(left), _operand(right))
                    ),
                    alu_timing[op_idx],
                )
            )
    for var_idx, (store_id, value) in last_store.items():
        records.append(
            (
                store_id,
                (value[1],) if value[0] == "r" else (),
                _fast_tuple(store_id, Opcode.STORE, (_operand(value),), variables[var_idx]),
                t_store,
            )
        )
    records.sort()  # ids are unique, so only the first element compares

    # The construction guarantees the TupleProgram invariants (unique
    # increasing ids, refs point backwards), so skip the O(n) validate
    # of the normal constructor on this hot path.
    program = TupleProgram.__new__(TupleProgram)
    program.tuples = [rec[2] for rec in records]

    # Assemble the DAG exactly as ``InstructionDAG.from_program`` +
    # ``build`` would -- same dict insertion orders (ENTRY, EXIT, then
    # ids ascending), same edge order (program order, operand order,
    # duplicate operands collapsed), same dummy wiring order, and the
    # very same Kahn tie-breaking -- just without re-walking operand
    # objects.  The check-mode cross-check in ``compile_cases`` pins
    # this equivalence structurally.
    # Latency insertion order (ENTRY, EXIT, ids ascending) seeds the
    # succs/preds dict order and thereby Kahn's frontier order -- fill
    # it from the sorted records, timings hoisted per batch above.
    latency: dict = {ENTRY: ZERO, EXIT: ZERO}
    payload: dict = {}
    for tid, _refs, _tup, t in records:
        latency[tid] = t
    succs: dict = {n: [] for n in latency}
    preds: dict = {n: [] for n in latency}
    for tid, refs, tup, _t in records:
        payload[tid] = tup
        if refs:
            if len(refs) == 2 and refs[0] == refs[1]:
                refs = refs[:1]  # duplicate operand: one precedence edge
            for u in refs:
                succs[u].append(tid)
                preds[tid].append(u)
    for tid, _refs, _tup, _t in records:
        if not preds[tid]:
            succs[ENTRY].append(tid)
            preds[tid].append(ENTRY)
        if not succs[tid]:
            succs[tid].append(EXIT)
            preds[EXIT].append(tid)
    if not records:  # empty program: entry -> exit
        succs[ENTRY].append(EXIT)
        preds[EXIT].append(ENTRY)
    dag = InstructionDAG(
        _latency=latency,
        _succs={n: tuple(s) for n, s in succs.items()},
        _preds={n: tuple(p) for n, p in preds.items()},
        _topo=_topological_order(latency, succs, preds),
        _payload=payload,
    )
    return VecCase(seed, config, program, dag)


class VecCase(BenchmarkCase):
    """A :class:`BenchmarkCase` whose AST-side fields rebuild on demand.

    The vectorized path never materializes the basic block or the raw
    tuple program; accessing ``block``/``raw_program`` regenerates them
    through the canonical python path (cheap, and bit-identical since
    the drawn values are).
    """

    def __init__(self, seed, config, program, dag) -> None:
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "config", config)
        object.__setattr__(self, "program", program)
        object.__setattr__(self, "dag", dag)

    def __getattr__(self, name):
        if name == "block":
            block = generate_block(self.config, random.Random(self.seed))
            object.__setattr__(self, "block", block)
            return block
        if name == "raw_program":
            from repro.ir import generate_tuples

            raw = generate_tuples(self.block)
            object.__setattr__(self, "raw_program", raw)
            return raw
        raise AttributeError(name)


def _compile_vectorized(
    config: GeneratorConfig, seeds, timing: TimingModel
) -> list[BenchmarkCase]:
    drawn = draw_corpus(config, seeds)
    return compile_drawn_cases(drawn, config, timing)


def compile_drawn_cases(
    drawn: DrawnCorpus, config: GeneratorConfig, timing: TimingModel
) -> list[BenchmarkCase]:
    """Fused front end over an already-drawn corpus (or an arena view)."""
    variables = config.variable_names()
    # One timing lookup per opcode for the whole batch; the per-case
    # assembly attaches these to each record instead of re-keying a
    # dict by enum member per tuple.
    t_load = timing[Opcode.LOAD]
    t_store = timing[Opcode.STORE]
    alu_timing = [timing[op] for op in ALU_OPCODES]
    return [
        _compile_drawn(
            config,
            drawn.seeds[i],
            drawn.constants[i],
            drawn.targets[i],
            drawn.ops[i],
            drawn.operand_kind[i],
            drawn.operand_idx[i],
            variables,
            t_load,
            t_store,
            alu_timing,
        )
        for i in range(len(drawn))
    ]


def compile_cases(
    config: GeneratorConfig,
    seeds,
    timing: TimingModel = DEFAULT_TIMING,
) -> list[BenchmarkCase]:
    """Compile a batch of seeds, vectorized when the backend allows.

    The dispatch contract matches every other kernel: ``REPRO_BACKEND``
    plus ``THRESHOLDS["genvec"]`` (batch size) pick the path, the
    decision is counted, and check mode re-derives every case through
    :func:`compile_case` and asserts the optimized programs match.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    if supported(config) and kernels.use_numpy("genvec", len(seeds)):
        with kernels.timed("genvec", "numpy"):
            cases = _compile_vectorized(config, seeds, timing)
        if kernels.checking():
            for case in cases:
                expected = compile_case(config, case.seed, timing)
                kernels.verify(
                    "genvec", case.program.tuples, expected.program.tuples
                )
        return cases
    with kernels.timed("genvec", "python"):
        return [compile_case(config, seed, timing) for seed in seeds]
