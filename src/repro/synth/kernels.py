"""Curated real-code kernels in the mini language.

Section 2 of the paper: "The drawback, of course, is that it is not
possible to take real benchmark programs directly as input."  This
module removes that drawback for a small suite of classic straight-line
kernels, hand-written in the mini language: unrolled FIR filtering, a
2x2 matrix multiply, Horner polynomial evaluation, a checksum round, a
complex multiply-accumulate, 3D geometry dot/cross products, fixed-point
normalization, and a hash-mix round.

Each kernel is a :class:`Kernel` with source text, a human description,
and sample inputs for semantics checks.  ``KERNELS`` maps names to
kernels; :func:`kernel_blocks` compiles all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.ir import BasicBlock, parse_block

__all__ = ["Kernel", "KERNELS", "kernel_blocks"]


@dataclass(frozen=True)
class Kernel:
    """One hand-written straight-line kernel."""

    name: str
    description: str
    source: str
    sample_inputs: Mapping[str, int]

    def block(self) -> BasicBlock:
        return parse_block(self.source)


_KERNELS = [
    Kernel(
        name="fir4",
        description="4-tap FIR filter step (multiply-accumulate chain)",
        source="""
            acc = x0 * c0
            acc = acc + x1 * c1
            acc = acc + x2 * c2
            acc = acc + x3 * c3
            y = acc / 256
        """,
        sample_inputs={"x0": 3, "x1": -5, "x2": 8, "x3": 2,
                       "c0": 64, "c1": 128, "c2": 128, "c3": 64},
    ),
    Kernel(
        name="matmul2",
        description="2x2 integer matrix multiply (8 muls, 4 adds)",
        source="""
            r00 = a00 * b00 + a01 * b10
            r01 = a00 * b01 + a01 * b11
            r10 = a10 * b00 + a11 * b10
            r11 = a10 * b01 + a11 * b11
        """,
        sample_inputs={"a00": 1, "a01": 2, "a10": 3, "a11": 4,
                       "b00": 5, "b01": 6, "b10": 7, "b11": 8},
    ),
    Kernel(
        name="horner5",
        description="degree-5 polynomial via Horner's rule (serial chain)",
        source="""
            p = k5
            p = p * x + k4
            p = p * x + k3
            p = p * x + k2
            p = p * x + k1
            p = p * x + k0
        """,
        sample_inputs={"x": 3, "k0": 1, "k1": 2, "k2": 3, "k3": 4, "k4": 5, "k5": 6},
    ),
    Kernel(
        name="checksum",
        description="Fletcher-style checksum round over four words",
        source="""
            s1 = s1 + w0
            s2 = s2 + s1
            s1 = s1 + w1
            s2 = s2 + s1
            s1 = s1 + w2
            s2 = s2 + s1
            s1 = s1 + w3
            s2 = s2 + s1
            s1 = s1 % 65535
            s2 = s2 % 65535
        """,
        sample_inputs={"s1": 1, "s2": 0, "w0": 10, "w1": 20, "w2": 30, "w3": 40},
    ),
    Kernel(
        name="cmac",
        description="complex multiply-accumulate (ar+ai)(br+bi) + acc",
        source="""
            tr = ar * br - ai * bi
            ti = ar * bi + ai * br
            accr = accr + tr
            acci = acci + ti
        """,
        sample_inputs={"ar": 3, "ai": 4, "br": 5, "bi": -2, "accr": 100, "acci": -7},
    ),
    Kernel(
        name="geometry3",
        description="3D dot product and cross product of two vectors",
        source="""
            dot = ax * bx + ay * by + az * bz
            cx = ay * bz - az * by
            cy = az * bx - ax * bz
            cz = ax * by - ay * bx
        """,
        sample_inputs={"ax": 1, "ay": 2, "az": 3, "bx": 4, "by": 5, "bz": 6},
    ),
    Kernel(
        name="fixnorm",
        description="fixed-point normalize: scale, clamp via masking, bias",
        source="""
            scaled = v * gain / 128
            low = scaled & 255
            hi = scaled - low
            clamped = low | (hi & 0)
            out = clamped + bias
        """,
        sample_inputs={"v": 77, "gain": 200, "bias": 12},
    ),
    Kernel(
        name="hashmix",
        description="integer hash mixing round (xorshift-style with adds)",
        source="""
            h = h + k * 2654435761
            h = h + (h / 65536)
            h = h * 2246822519
            h = h + (h / 8192)
            h = h % 4294967296
        """,
        sample_inputs={"h": 123456789, "k": 42},
    ),
]

#: Name -> kernel, in suite order.
KERNELS: Mapping[str, Kernel] = {k.name: k for k in _KERNELS}


def kernel_blocks() -> dict[str, BasicBlock]:
    """Parse every kernel; returns ``name -> BasicBlock``."""
    return {name: kernel.block() for name, kernel in KERNELS.items()}
