"""Random structured programs (extension of section 2.2 to section 7).

Generates :class:`~repro.flow.ast.FlowProgram` instances with the same
operator mix as the straight-line generator plus structured constructs:

* ``if``/``else`` on a random expression over live variables;
* **counted** ``while`` loops -- a fresh reserved counter (``__c0``,
  ``__c1``, ...; the mini language's user identifiers never start with
  an underscore in generated code) is initialized to a small constant
  and decremented once per iteration, so every generated program
  provably terminates.  This mirrors how the paper's follow-up work
  could evaluate loop scheduling without solving the halting problem for
  its own benchmark generator.

All randomness flows through an explicit ``random.Random``; programs are
reproducible from ``(config, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.flow.ast import FlowProgram, IfStmt, Stmt, WhileStmt
from repro.ir.ast import Assign, BinOp, Const, Var
from repro.ir.ops import Opcode
from repro.synth.generator import GeneratorConfig, _draw_operation

__all__ = ["FlowGeneratorConfig", "generate_flow_program"]


@dataclass(frozen=True)
class FlowGeneratorConfig:
    """Parameters of the structured-program generator."""

    #: Total budget of assignment statements across all nesting levels.
    n_statements: int = 30
    n_variables: int = 6
    n_constants: int = 3
    #: Probability that a statement position opens an if (with else half
    #: the time) or a counted while loop.
    p_if: float = 0.12
    p_while: float = 0.08
    #: Maximum structural nesting depth.
    max_depth: int = 2
    #: Inclusive range of iteration counts for counted loops.
    loop_iters: tuple[int, int] = (1, 4)
    #: Operand-level parameters (reuses the straight-line generator).
    p_constant_operand: float = 0.12
    constant_range: tuple[int, int] = (0, 255)

    def __post_init__(self) -> None:
        if self.n_statements < 1:
            raise ValueError("n_statements must be >= 1")
        if not 0.0 <= self.p_if + self.p_while < 1.0:
            raise ValueError("p_if + p_while must be in [0, 1)")
        if self.loop_iters[0] < 0 or self.loop_iters[0] > self.loop_iters[1]:
            raise ValueError("loop_iters must be (lo, hi) with 0 <= lo <= hi")

    def base_config(self) -> GeneratorConfig:
        return GeneratorConfig(
            n_statements=1,
            n_variables=self.n_variables,
            n_constants=self.n_constants,
            p_constant_operand=self.p_constant_operand,
            constant_range=self.constant_range,
        )


class _FlowGen:
    def __init__(self, config: FlowGeneratorConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self.base = config.base_config()
        self.variables = self.base.variable_names()
        lo, hi = config.constant_range
        self.constants = tuple(rng.randint(lo, hi) for _ in range(config.n_constants))
        self.budget = config.n_statements
        self.counter_idx = 0

    def assignment(self) -> Assign:
        self.budget -= 1
        target = self.rng.choice(self.variables)
        expr = _draw_operation(self.base, self.rng, self.variables, self.constants, 1)
        return Assign(target, expr)

    def condition(self):
        return _draw_operation(self.base, self.rng, self.variables, self.constants, 1)

    def body(self, depth: int, max_len: int) -> tuple[Stmt, ...]:
        length = self.rng.randint(1, max(1, max_len))
        out: list[Stmt] = []
        for _ in range(length):
            if self.budget <= 0:
                break
            out.append(self.statement(depth))
        if not out:
            out.append(self.assignment())
        return tuple(out)

    def statement(self, depth: int) -> Stmt:
        roll = self.rng.random()
        structural_ok = depth < self.config.max_depth and self.budget > 2
        if structural_ok and roll < self.config.p_if:
            cond = self.condition()
            then_body = self.body(depth + 1, self.budget // 2)
            else_body: tuple[Stmt, ...] = ()
            if self.rng.random() < 0.5 and self.budget > 0:
                else_body = self.body(depth + 1, self.budget // 2)
            return IfStmt(cond, then_body, else_body)
        if structural_ok and roll < self.config.p_if + self.config.p_while:
            counter = f"__c{self.counter_idx}"
            self.counter_idx += 1
            body = list(self.body(depth + 1, self.budget // 2))
            body.append(
                Assign(counter, BinOp(Opcode.SUB, Var(counter), Const(1)))
            )
            return WhileStmt(Var(counter), tuple(body))
        return self.assignment()

    def program(self) -> FlowProgram:
        statements: list[Stmt] = []
        preamble: list[Stmt] = []
        while self.budget > 0:
            stmt = self.statement(depth=0)
            statements.append(stmt)
        # counted-loop counters must be initialized before use; collect
        # initializations up front (order does not matter, they are fresh).
        inits = self._collect_counter_inits(statements)
        preamble.extend(inits)
        return FlowProgram(tuple(preamble + statements))

    def _collect_counter_inits(self, statements) -> list[Assign]:
        inits: list[Assign] = []

        def walk(stmts) -> None:
            for stmt in stmts:
                if isinstance(stmt, WhileStmt):
                    if isinstance(stmt.cond, Var) and stmt.cond.name.startswith("__c"):
                        iters = self.rng.randint(*self.config.loop_iters)
                        inits.append(Assign(stmt.cond.name, Const(iters)))
                    walk(stmt.body)
                elif isinstance(stmt, IfStmt):
                    walk(stmt.then_body)
                    walk(stmt.else_body)

        walk(statements)
        return inits


def generate_flow_program(
    config: FlowGeneratorConfig, rng: random.Random | int
) -> FlowProgram:
    """Generate one random, provably terminating structured program."""
    if isinstance(rng, int):
        rng = random.Random(rng)
    return _FlowGen(config, rng).program()
