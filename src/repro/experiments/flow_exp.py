"""E16 (extension): control-flow scheduling overhead.

The paper defers control flow to future work; this experiment quantifies
the cost of the conservative block-boundary discipline
(:mod:`repro.flow`): every dynamic block transition is a machine-wide
barrier, so short blocks mean frequent global synchronization.

For a corpus of random structured programs the experiment reports:

* mean dynamic block count and mean instructions per dynamic block;
* the *boundary share*: block-boundary barriers as a fraction of all
  runtime barriers executed along the dynamic path;
* measured total time vs the compile-time path bound (always inside);
* a value check of every execution against the reference interpreter
  (the experiment hard-fails on any mismatch, making the corpus run an
  end-to-end correctness sweep as well).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.core.scheduler import SchedulerConfig
from repro.experiments.render import table
from repro.flow.executor import execute_flow_schedule
from repro.flow.schedule import schedule_program
from repro.synth.flowgen import FlowGeneratorConfig, generate_flow_program

__all__ = ["FlowOverheadResult", "flow_overhead_experiment"]


@dataclass(frozen=True)
class FlowOverheadResult:
    n_programs: int
    mean_dynamic_blocks: float
    mean_instructions_per_block: float
    mean_boundary_share: float
    mean_total_time: float
    mean_path_bound_hi: float
    value_mismatches: int

    def render(self) -> str:
        rows = [
            ["dynamic blocks / run", f"{self.mean_dynamic_blocks:.1f}"],
            ["instructions / dynamic block", f"{self.mean_instructions_per_block:.1f}"],
            ["boundary barriers / all runtime barriers", f"{self.mean_boundary_share:.1%}"],
            ["measured total time (mean)", f"{self.mean_total_time:.1f}"],
            ["compile-time path bound hi (mean)", f"{self.mean_path_bound_hi:.1f}"],
            ["value mismatches vs reference", str(self.value_mismatches)],
        ]
        return (
            "Control-flow scheduling overhead (extension; random structured "
            f"programs, n={self.n_programs})\n" + table(["metric", "value"], rows)
        )


def flow_overhead_experiment(
    count: int = 30,
    master_seed: int = 21,
    n_pes: int = 4,
    config: FlowGeneratorConfig | None = None,
) -> FlowOverheadResult:
    """Schedule and dynamically execute a corpus of structured programs."""
    config = config or FlowGeneratorConfig(n_statements=25, n_variables=6)
    seed_stream = random.Random(master_seed)

    blocks, per_block, boundary, totals, bounds = [], [], [], [], []
    mismatches = 0
    for _ in range(count):
        seed = seed_stream.getrandbits(32)
        program = generate_flow_program(config, seed)
        env = {
            name: (seed >> k) % 23
            for k, name in enumerate(program.variables())
        }
        reference = program.execute(env)
        flow = schedule_program(program, SchedulerConfig(n_pes=n_pes, seed=seed))
        trace = execute_flow_schedule(flow, env, rng=seed)

        final = trace.final_state()
        if any(final.get(k) != v for k, v in reference.items()):
            mismatches += 1

        n_dyn = trace.n_dynamic_blocks
        instr = sum(len(t.start) for t in trace.block_traces)
        intra = sum(
            flow.results[bid].counts.barriers_final
            for bid in trace.block_sequence
        )
        boundaries = max(0, n_dyn - 1)
        runtime_barriers = intra + boundaries
        blocks.append(n_dyn)
        per_block.append(instr / n_dyn if n_dyn else 0.0)
        boundary.append(boundaries / runtime_barriers if runtime_barriers else 0.0)
        totals.append(trace.total_time)
        bounds.append(flow.static_path_bound(trace.block_sequence).hi)

    return FlowOverheadResult(
        n_programs=count,
        mean_dynamic_blocks=float(np.mean(blocks)),
        mean_instructions_per_block=float(np.mean(per_block)),
        mean_boundary_share=float(np.mean(boundary)),
        mean_total_time=float(np.mean(totals)),
        mean_path_bound_hi=float(np.mean(bounds)),
        value_mismatches=mismatches,
    )
