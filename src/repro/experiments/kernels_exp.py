"""E17 (extension): real kernels vs synthetic benchmarks.

The paper's evaluation is entirely synthetic and argues the results are
"conservative" for real code.  With the curated kernel suite
(:mod:`repro.synth.kernels`) we can check that argument directly:
schedule each hand-written kernel and report its synchronization
fractions, makespan window, and speedup over one processor, next to the
synthetic-corpus means at a comparable size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments.render import table
from repro.experiments.sweeps import ExperimentPoint, run_point
from repro.ir import compile_block, interpret, generate_tuples, optimize
from repro.metrics.fractions import SyncFractions, fractions_of
from repro.synth.generator import GeneratorConfig
from repro.synth.kernels import KERNELS

__all__ = ["KernelRow", "KernelSuiteResult", "kernel_suite_experiment"]


@dataclass(frozen=True)
class KernelRow:
    name: str
    description: str
    n_instructions: int
    fractions: SyncFractions
    makespan_lo: int
    makespan_hi: int
    serial_time_hi: int  # single-PE worst case (sum of max latencies)

    @property
    def worst_case_speedup(self) -> float:
        return self.serial_time_hi / self.makespan_hi if self.makespan_hi else 0.0


@dataclass(frozen=True)
class KernelSuiteResult:
    rows: tuple[KernelRow, ...]
    synthetic_barrier: float
    synthetic_serialized: float
    n_pes: int

    def render(self) -> str:
        body = [
            [
                row.name,
                row.n_instructions,
                f"{row.fractions.barrier:.0%}",
                f"{row.fractions.serialized:.0%}",
                f"{row.fractions.static:.0%}",
                f"[{row.makespan_lo},{row.makespan_hi}]",
                f"{row.worst_case_speedup:.2f}x",
            ]
            for row in self.rows
        ]
        mean_barrier = float(np.mean([r.fractions.barrier for r in self.rows]))
        mean_serial = float(np.mean([r.fractions.serialized for r in self.rows]))
        return (
            f"Real kernels vs synthetic benchmarks ({self.n_pes} PEs)\n"
            + table(
                ["kernel", "instrs", "barrier", "serial", "static", "makespan", "speedup"],
                body,
            )
            + f"\nkernel means: barrier {mean_barrier:.1%}, serialized {mean_serial:.1%}"
            + f"\nsynthetic means (same size class): barrier "
            f"{self.synthetic_barrier:.1%}, serialized {self.synthetic_serialized:.1%}"
            + "\npaper section 2: the synthetic results are 'conservative' --"
            + "\nreal code with reuse and structure should do no worse."
        )


def kernel_suite_experiment(
    n_pes: int = 4, seed: int = 0, synthetic_count: int = 40
) -> KernelSuiteResult:
    """Schedule the whole kernel suite; also verify each kernel's compiled
    code against its reference semantics on the sample inputs."""
    rows: list[KernelRow] = []
    for name, kernel in KERNELS.items():
        block = kernel.block()
        # semantics check: compiled tuples == source block on sample inputs
        expected = block.execute(kernel.sample_inputs)
        program = optimize(generate_tuples(block))
        assert interpret(program, kernel.sample_inputs) == expected, name

        dag = compile_block(block)
        result = schedule_dag(dag, SchedulerConfig(n_pes=n_pes, seed=seed))
        serial_hi = sum(dag.latency(n).hi for n in dag.real_nodes)
        rows.append(
            KernelRow(
                name=name,
                description=kernel.description,
                n_instructions=len(dag),
                fractions=fractions_of(result),
                makespan_lo=result.makespan.lo,
                makespan_hi=result.makespan.hi,
                serial_time_hi=serial_hi,
            )
        )

    mean_instrs = int(np.mean([r.n_instructions for r in rows]))
    synth = run_point(
        ExperimentPoint(
            generator=GeneratorConfig(
                n_statements=max(5, mean_instrs // 2), n_variables=8
            ),
            scheduler=SchedulerConfig(n_pes=n_pes),
            count=synthetic_count,
            master_seed=seed + 1,
        )
    )
    return KernelSuiteResult(
        rows=tuple(rows),
        synthetic_barrier=synth.barrier.mean,
        synthetic_serialized=synth.serialized.mean,
        n_pes=n_pes,
    )
