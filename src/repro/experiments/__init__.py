"""Experiment harness: one entry point per table/figure of the paper.

Each experiment function generates its corpus (seeded, reproducible),
schedules it, aggregates the section 3.1 fractions, and returns a result
object with a ``render()`` method producing the same rows/series the
paper reports.  The benchmark suite (``benchmarks/``) wraps these
functions one-to-one; ``EXPERIMENTS.md`` records paper-vs-measured
values.

The experiment index (DESIGN.md section 3):

=====  ==================================================  ==========================
E1     Table 1 instruction mix / latency check             :func:`table1_instruction_mix`
E2     Figure 14 scatter (serialized vs static)            :func:`figure14_scatter`
E3     Figure 15 fractions vs #statements                  :func:`figure15_statements`
E4     Figure 16 fractions vs #variables                   :func:`figure16_variables`
E5     Figure 17 fractions vs #processors                  :func:`figure17_processors`
E6     Figure 18 VLIW vs barrier MIMD                      :func:`figure18_vliw`
E7     Section 5 overall ranges                            :func:`overall_ranges`
E8     Section 4.4.3 barrier merging                       :func:`merging_experiment`
E9     Section 5.4 round-robin ablation                    :func:`ablation_round_robin`
E10    Section 5.4 ordering ablation                       :func:`ablation_ordering`
E11    Section 5.4 lookahead ablation                      :func:`ablation_lookahead`
E12    Section 5.4 timing-variation ablation               :func:`ablation_timing_variation`
E13    Section 3 secondary effect (~28%)                   :func:`secondary_effect`
E14    Conservative vs optimal insertion                   :func:`optimal_vs_conservative`
E15    Extension: barrier hardware cost                    :func:`barrier_cost_experiment`
E16    Extension: control-flow scheduling overhead         :func:`flow_overhead_experiment`
E17    Extension: real kernels vs synthetic                :func:`kernel_suite_experiment`
E18    Extension: conventional-MIMD sync removal           :func:`sync_elimination_experiment`
E19    Extension: fault-tolerance curve (robustness)       :func:`robustness_experiment`
E20    Extension: static vs hardened vs hybrid study       :func:`hybrid_experiment`
=====  ==================================================  ==========================
"""

from repro.experiments.sweeps import ExperimentPoint, run_corpus, run_point, sweep
from repro.experiments.figures import (
    figure14_scatter,
    figure15_statements,
    figure16_variables,
    figure17_processors,
    figure18_vliw,
)
from repro.experiments.archive import archive_corpus, load_archive, stats_from_archive
from repro.experiments.flow_exp import flow_overhead_experiment
from repro.experiments.kernels_exp import kernel_suite_experiment
from repro.experiments.hybrid_exp import (
    HybridPoint,
    HybridResult,
    hybrid_experiment,
)
from repro.experiments.robustness_exp import (
    RobustnessResult,
    robustness_experiment,
)
from repro.experiments.syncelim_exp import sync_elimination_experiment
from repro.experiments.tables import (
    ablation_lookahead,
    barrier_cost_experiment,
    ablation_ordering,
    ablation_round_robin,
    ablation_timing_variation,
    merging_experiment,
    optimal_vs_conservative,
    overall_ranges,
    secondary_effect,
    table1_instruction_mix,
)

__all__ = [
    "ExperimentPoint",
    "run_corpus",
    "run_point",
    "sweep",
    "figure14_scatter",
    "figure15_statements",
    "figure16_variables",
    "figure17_processors",
    "figure18_vliw",
    "table1_instruction_mix",
    "overall_ranges",
    "merging_experiment",
    "ablation_round_robin",
    "ablation_ordering",
    "ablation_lookahead",
    "ablation_timing_variation",
    "secondary_effect",
    "optimal_vs_conservative",
    "barrier_cost_experiment",
    "flow_overhead_experiment",
    "kernel_suite_experiment",
    "archive_corpus",
    "load_archive",
    "stats_from_archive",
    "sync_elimination_experiment",
    "RobustnessResult",
    "robustness_experiment",
    "HybridPoint",
    "HybridResult",
    "hybrid_experiment",
]
