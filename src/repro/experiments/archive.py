"""Corpus archives: persist per-benchmark scheduling records as JSONL.

An experiment pipeline that schedules thousands of benchmarks wants the
raw per-benchmark records on disk so statistics can be recomputed (or
new questions asked) without rescheduling.  :func:`archive_corpus` runs
a parameter point and streams one JSON record per benchmark (the
:func:`repro.io.result_summary` record plus provenance: generator
parameters and the case seed); :func:`load_archive` reads it back and
:func:`stats_from_archive` recomputes the headline aggregates, which
must (and, in tests, do) match a fresh in-memory run exactly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.experiments.sweeps import ExperimentPoint
from repro.io import result_summary
from repro.core.scheduler import schedule_dag
from repro.synth.corpus import generate_cases

__all__ = ["ArchiveStats", "archive_corpus", "load_archive", "stats_from_archive"]

_FORMAT = "repro.corpus-archive.v1"


def archive_corpus(point: ExperimentPoint, path: str | Path) -> int:
    """Schedule the point's corpus, writing one JSON line per benchmark.

    Returns the number of records written.  The first line is a header
    carrying the format tag and the point's parameters.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": _FORMAT,
            "generator": asdict(point.generator),
            "scheduler": {
                "n_pes": point.scheduler.n_pes,
                "machine": point.scheduler.machine,
                "insertion": point.scheduler.insertion,
                "ordering": point.scheduler.ordering,
                "assignment": point.scheduler.assignment,
                "barrier_latency": point.scheduler.barrier_latency,
            },
            "count": point.count,
            "master_seed": point.master_seed,
            "timing": point.timing.name,
        }
        handle.write(json.dumps(header) + "\n")
        for case in generate_cases(
            point.generator, point.count, point.master_seed, timing=point.timing
        ):
            config = point.scheduler.with_(seed=case.seed & 0xFFFFFFFF)
            result = schedule_dag(case.dag, config)
            record = result_summary(result)
            record["case_seed"] = case.seed
            record["n_instructions"] = case.n_instructions
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_archive(path: str | Path) -> tuple[dict, list[dict]]:
    """Read an archive; returns ``(header, records)``."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError("empty archive")
    header = json.loads(lines[0])
    if header.get("format") != _FORMAT:
        raise ValueError(f"unsupported archive format {header.get('format')!r}")
    return header, [json.loads(line) for line in lines[1:]]


@dataclass(frozen=True)
class ArchiveStats:
    """Headline aggregates recomputed from an archive."""

    n_benchmarks: int
    mean_barrier: float
    mean_serialized: float
    mean_static: float
    mean_barriers_final: float
    mean_makespan_hi: float
    total_repairs: int

    def render(self) -> str:
        return (
            f"archive: n={self.n_benchmarks} barrier {self.mean_barrier:.1%} "
            f"serialized {self.mean_serialized:.1%} static {self.mean_static:.1%} "
            f"barriers {self.mean_barriers_final:.2f} "
            f"Tmax {self.mean_makespan_hi:.1f} repairs {self.total_repairs}"
        )


def stats_from_archive(path: str | Path) -> ArchiveStats:
    """Recompute corpus aggregates from a stored archive."""
    _header, records = load_archive(path)
    if not records:
        return ArchiveStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)

    def mean(key_path) -> float:
        values = []
        for record in records:
            value = record
            for key in key_path:
                value = value[key]
            values.append(value)
        return float(np.mean(values))

    return ArchiveStats(
        n_benchmarks=len(records),
        mean_barrier=mean(("fractions", "barrier")),
        mean_serialized=mean(("fractions", "serialized")),
        mean_static=mean(("fractions", "static")),
        mean_barriers_final=mean(("barriers_final",)),
        mean_makespan_hi=float(
            np.mean([record["makespan"][1] for record in records])
        ),
        total_repairs=sum(record["repairs"] for record in records),
    )


def iter_records(path: str | Path) -> Iterator[dict]:
    """Stream records without loading the whole archive."""
    with Path(path).open("r", encoding="utf-8") as handle:
        first = handle.readline()
        header = json.loads(first)
        if header.get("format") != _FORMAT:
            raise ValueError("unsupported archive format")
        for line in handle:
            if line.strip():
                yield json.loads(line)
