"""E18 (extension): removing conventional-MIMD synchronizations by timing.

The paper's section 7 proposes applying its timing machinery "to remove
some synchronizations in conventional MIMD architectures".  This
experiment quantifies the idea on the synthetic corpus, comparing four
regimes on the *same* processor assignment:

* **naive** -- one directed sync per cross-processor edge (figure 3);
* **structural** -- Shaffer/Callahan transitive reduction (graph shape
  only, the strongest prior technique the paper cites);
* **timing** -- this repo's interval-based elimination
  (:mod:`repro.core.sync_elimination`);
* **structural + timing** -- elimination started from the reduced set;
* and, for context, the **barrier MIMD**'s barrier count for the same
  blocks (the paper's own architecture).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.core.sync_elimination import eliminate_directed_syncs
from repro.experiments.render import table
from repro.machine.mimd import directed_sync_counts, _combined_task_graph
from repro.synth.corpus import generate_cases
from repro.synth.generator import GeneratorConfig

__all__ = ["SyncEliminationStats", "sync_elimination_experiment"]


@dataclass(frozen=True)
class SyncEliminationStats:
    n_benchmarks: int
    mean_naive: float
    mean_structural: float
    mean_timing: float
    mean_combined: float
    mean_barriers: float

    def render(self) -> str:
        def row(label, value):
            removed = 1.0 - value / self.mean_naive if self.mean_naive else 0.0
            return [label, f"{value:.2f}", f"{removed:.0%}"]

        rows = [
            row("naive directed syncs", self.mean_naive),
            row("after transitive reduction", self.mean_structural),
            row("after timing elimination", self.mean_timing),
            row("after both", self.mean_combined),
            row("barrier MIMD barriers (context)", self.mean_barriers),
        ]
        return (
            "Conventional-MIMD synchronization removal "
            f"(extension; n={self.n_benchmarks}, 60 stmts, 10 vars, 8 PEs)\n"
            + table(["regime", "runtime syncs/block", "vs naive"], rows)
            + "\npaper section 7: 'the possible application of the barrier"
            + "\nscheduling techniques to remove some synchronizations in"
            + "\nconventional MIMD architectures' -- quantified here."
        )


def sync_elimination_experiment(
    count: int = 40,
    master_seed: int = 23,
    n_pes: int = 8,
    n_statements: int = 60,
    n_variables: int = 10,
) -> SyncEliminationStats:
    """Run the four regimes over one corpus."""
    import networkx as nx

    gen = GeneratorConfig(n_statements=n_statements, n_variables=n_variables)
    naive, structural, timing, combined, barriers = [], [], [], [], []
    for case in generate_cases(gen, count, master_seed):
        result = schedule_dag(
            case.dag, SchedulerConfig(n_pes=n_pes, seed=case.seed & 0xFFFFFFFF)
        )
        schedule = result.schedule
        n_naive, n_reduced = directed_sync_counts(case.dag, schedule)
        elim = eliminate_directed_syncs(schedule)

        reduced_graph = nx.transitive_reduction(
            _combined_task_graph(case.dag, schedule)
        )
        reduced_set = {
            (g, i)
            for g, i in case.dag.real_edges()
            if schedule.processor_of(g) != schedule.processor_of(i)
            and reduced_graph.has_edge(g, i)
        }
        both = eliminate_directed_syncs(schedule, start_from=reduced_set)

        naive.append(n_naive)
        structural.append(n_reduced)
        timing.append(elim.n_retained)
        combined.append(both.n_retained)
        barriers.append(result.counts.barriers_final)

    return SyncEliminationStats(
        n_benchmarks=count,
        mean_naive=float(np.mean(naive)),
        mean_structural=float(np.mean(structural)),
        mean_timing=float(np.mean(timing)),
        mean_combined=float(np.mean(combined)),
        mean_barriers=float(np.mean(barriers)),
    )
