"""Figure-by-figure reproductions of the paper's evaluation (section 5-6).

Every function is deterministic in its ``master_seed`` and parameterized
by corpus size (the paper averages 100 benchmarks per point; benchmarks
may pass a smaller ``count`` for speed -- the shapes are stable well
below 100).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments.render import line_chart, scatter_plot, table
from repro.experiments.sweeps import ExperimentPoint, sweep
from repro.machine.vliw import vliw_schedule
from repro.metrics.fractions import fractions_of
from repro.metrics.stats import CorpusStats
from repro.synth.corpus import BenchmarkCase, generate_cases
from repro.synth.generator import GeneratorConfig

__all__ = [
    "ScatterResult",
    "SweepResult",
    "VliwComparisonResult",
    "figure14_scatter",
    "figure15_statements",
    "figure16_variables",
    "figure17_processors",
    "figure18_vliw",
]

#: Figure 14 keeps benchmarks whose DAGs imply 65..132 synchronizations.
FIG14_SYNC_RANGE = (65, 132)


# ---------------------------------------------------------------------------
# Figure 14: scatter of serialized vs statically scheduled fractions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScatterResult:
    """Outcome of the figure 14 experiment."""

    points: tuple[tuple[float, float], ...]  # (static, serialized)
    center_static: float
    center_serialized: float

    @property
    def center_no_runtime(self) -> float:
        """Center-of-mass serialized + static; the paper reads ~85%."""
        return self.center_static + self.center_serialized

    def render(self) -> str:
        plot = scatter_plot(
            self.points,
            x_label="static scheduling fraction",
            y_label="serialized fraction",
            x_range=(0.0, 0.6),
            y_range=(0.0, 1.0),
        )
        return (
            f"Figure 14: {len(self.points)} benchmarks "
            f"({FIG14_SYNC_RANGE[0]}..{FIG14_SYNC_RANGE[1]} syncs)\n"
            f"{plot}\n"
            f"center of mass: static {self.center_static:.1%} + "
            f"serialized {self.center_serialized:.1%} = "
            f"{self.center_no_runtime:.1%}  (paper: ~85% line)"
        )


def figure14_scatter(
    count: int = 400,
    master_seed: int = 14,
    n_pes: int = 8,
) -> ScatterResult:
    """Serialized-vs-static scatter over large benchmarks (figure 14).

    Benchmarks are drawn from a mix of generator shapes and kept only if
    their optimized DAG implies 65..132 synchronizations, matching the
    figure's caption.
    """
    lo, hi = FIG14_SYNC_RANGE

    def accept(case: BenchmarkCase) -> bool:
        return lo <= case.implied_synchronizations <= hi

    shapes = [
        GeneratorConfig(n_statements=60, n_variables=10),
        GeneratorConfig(n_statements=80, n_variables=12),
        GeneratorConfig(n_statements=100, n_variables=15),
    ]
    per_shape = max(1, count // len(shapes))
    points: list[tuple[float, float]] = []
    for k, gen in enumerate(shapes):
        for case in generate_cases(
            gen, per_shape, master_seed + k, accept=accept
        ):
            result = schedule_dag(
                case.dag,
                SchedulerConfig(n_pes=n_pes, seed=case.seed & 0xFFFFFFFF),
            )
            fr = fractions_of(result)
            points.append((fr.static, fr.serialized))

    arr = np.asarray(points)
    return ScatterResult(
        points=tuple(map(tuple, points)),
        center_static=float(arr[:, 0].mean()),
        center_serialized=float(arr[:, 1].mean()),
    )


# ---------------------------------------------------------------------------
# Figures 15-17: sync fractions along one parameter axis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepResult:
    """One fraction-vs-parameter line chart (figures 15, 16, 17)."""

    title: str
    axis_label: str
    x_values: tuple[object, ...]
    stats: tuple[CorpusStats, ...]
    notes: tuple[str, ...] = field(default=())

    def series(self) -> dict[str, list[float]]:
        return {
            "barrier": [s.barrier.mean for s in self.stats],
            "serialized": [s.serialized.mean for s in self.stats],
            "static": [s.static.mean for s in self.stats],
        }

    def rows(self) -> list[list[object]]:
        return [
            [
                x,
                f"{s.barrier.mean:.1%}",
                f"{s.serialized.mean:.1%}",
                f"{s.static.mean:.1%}",
                f"{s.mean_implied_syncs:.1f}",
                f"{s.mean_barriers:.2f}",
                f"{s.mean_processors_used:.1f}",
            ]
            for x, s in zip(self.x_values, self.stats)
        ]

    def render(self) -> str:
        head = [self.axis_label, "barrier", "serial", "static", "syncs", "bars", "PEs used"]
        chart = line_chart(
            self.x_values, self.series(), y_label="fraction of implied syncs", y_max=1.0
        )
        body = table(head, self.rows())
        notes = "\n".join(self.notes)
        return f"{self.title}\n{body}\n\n{chart}" + (f"\n{notes}" if notes else "")


def _sweep_figure(
    title: str,
    axis: str,
    axis_label: str,
    values: Sequence[object],
    base: ExperimentPoint,
    notes: tuple[str, ...] = (),
) -> SweepResult:
    swept = sweep(base, axis, values)
    return SweepResult(
        title=title,
        axis_label=axis_label,
        x_values=tuple(v for v, _ in swept),
        stats=tuple(s for _, s in swept),
        notes=notes,
    )


def figure15_statements(
    count: int = 100,
    master_seed: int = 15,
    values: Sequence[int] = (5, 10, 15, 20, 30, 40, 50, 60),
) -> SweepResult:
    """Fractions vs number of statements (8 PEs, 15 variables; figure 15)."""
    base = ExperimentPoint(
        generator=GeneratorConfig(n_statements=5, n_variables=15),
        scheduler=SchedulerConfig(n_pes=8),
        count=count,
        master_seed=master_seed,
    )
    return _sweep_figure(
        "Figure 15: sync fractions, 8 PEs, 15 variables",
        "generator.n_statements",
        "stmts",
        values,
        base,
        notes=(
            "paper: barrier fraction decreases 5->20 stmts (fewer Loads up",
            "front), then flattens as Mul/Div/Mod appear; serialization",
            "decreases with block size.",
        ),
    )


def figure16_variables(
    count: int = 100,
    master_seed: int = 16,
    values: Sequence[int] = (2, 3, 4, 5, 6, 8, 10, 12, 15),
) -> SweepResult:
    """Fractions vs number of variables (8 PEs, 60 statements; figure 16)."""
    base = ExperimentPoint(
        generator=GeneratorConfig(n_statements=60, n_variables=2),
        scheduler=SchedulerConfig(n_pes=8),
        count=count,
        master_seed=master_seed,
    )
    return _sweep_figure(
        "Figure 16: sync fractions, 8 PEs, 60 statements",
        "generator.n_variables",
        "vars",
        values,
        base,
        notes=(
            "paper: barrier fraction rises with parallelism width until it",
            "exceeds the processor count, then is constant; serialization",
            "falls as width grows.",
        ),
    )


def figure17_processors(
    count: int = 100,
    master_seed: int = 17,
    values: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
) -> SweepResult:
    """Fractions vs number of processors (100 stmts, 10 vars; figure 17)."""
    base = ExperimentPoint(
        generator=GeneratorConfig(n_statements=100, n_variables=10),
        scheduler=SchedulerConfig(n_pes=2),
        count=count,
        master_seed=master_seed,
    )
    return _sweep_figure(
        "Figure 17: sync fractions, 100 statements, 10 variables",
        "scheduler.n_pes",
        "PEs",
        values,
        base,
        notes=(
            "paper: barrier fraction rises while PEs < parallelism width,",
            "then is constant; serialization stays nearly flat.",
        ),
    )


# ---------------------------------------------------------------------------
# Figure 18: VLIW vs barrier MIMD completion time
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VliwComparisonResult:
    """Normalized completion times vs processor count (figure 18)."""

    x_values: tuple[int, ...]
    barrier_min: tuple[float, ...]  # mean of (barrier min makespan / VLIW)
    barrier_max: tuple[float, ...]
    vliw_optimal_fraction: tuple[float, ...]  # schedules hitting critical path

    def render(self) -> str:
        rows = [
            [
                pes,
                f"{bmin:.3f}",
                f"{bmax:.3f}",
                "1.000",
                f"{opt:.0%}",
            ]
            for pes, bmin, bmax, opt in zip(
                self.x_values,
                self.barrier_min,
                self.barrier_max,
                self.vliw_optimal_fraction,
            )
        ]
        body = table(
            ["PEs", "barrier min", "barrier max", "VLIW", "VLIW=critpath"], rows
        )
        chart = line_chart(
            self.x_values,
            {
                "barrier-min/VLIW": list(self.barrier_min),
                "barrier-max/VLIW": list(self.barrier_max),
            },
            y_label="completion time normalized to VLIW",
            y_max=1.5,
        )
        return (
            "Figure 18: VLIW vs barrier MIMD, 60 statements, 10 variables\n"
            f"{body}\n\n{chart}\n"
            "paper: max times nearly identical (barrier slightly above at\n"
            "few PEs); min barrier time ~25% below VLIW."
        )


def figure18_vliw(
    count: int = 100,
    master_seed: int = 18,
    values: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
    n_statements: int = 60,
    n_variables: int = 10,
) -> VliwComparisonResult:
    """Barrier-MIMD completion (min/max) normalized to VLIW (figure 18)."""
    gen = GeneratorConfig(n_statements=n_statements, n_variables=n_variables)
    cases = list(generate_cases(gen, count, master_seed))

    mins: list[float] = []
    maxs: list[float] = []
    opts: list[float] = []
    for pes in values:
        ratios_min, ratios_max, optimal = [], [], 0
        for case in cases:
            vliw = vliw_schedule(case.dag, pes)
            result = schedule_dag(
                case.dag, SchedulerConfig(n_pes=pes, seed=case.seed & 0xFFFFFFFF)
            )
            ratios_min.append(result.makespan.lo / vliw.makespan)
            ratios_max.append(result.makespan.hi / vliw.makespan)
            optimal += vliw.is_critical_path_optimal
        mins.append(float(np.mean(ratios_min)))
        maxs.append(float(np.mean(ratios_max)))
        opts.append(optimal / len(cases))

    return VliwComparisonResult(
        x_values=tuple(values),
        barrier_min=tuple(mins),
        barrier_max=tuple(maxs),
        vliw_optimal_fraction=tuple(opts),
    )
