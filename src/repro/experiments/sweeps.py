"""Generic corpus runner and parameter sweeps.

One *experiment point* is (generator parameters, scheduler parameters,
corpus size, master seed).  :func:`run_point` compiles and schedules the
whole corpus for a point and reduces it to
:class:`~repro.metrics.stats.CorpusStats`; :func:`sweep` maps that over a
parameter axis.  Everything is deterministic in the master seed, matching
the paper's method of averaging 100 generated benchmarks per point.

Two performance controls ride on every entry point (see
``docs/performance.md``):

``jobs``
    Worker-process count for the corpus (``None`` consults the
    ``REPRO_JOBS`` environment variable, ``0`` means all cores).  The
    parallel path is *bit-identical* to serial -- per-case seeds are
    derived exactly as in the serial loop -- and falls back to serial
    when ``jobs <= 1``, the platform lacks ``fork``, or the ``accept``
    filter cannot cross process boundaries.
``cache``
    On-disk memoization of :func:`run_point` results, keyed by the full
    point content and package version (``None`` consults ``REPRO_CACHE``;
    default off).  Filtered points (``accept`` given) are never cached.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from repro.core import batchrun
from repro.core.scheduler import ScheduleResult, SchedulerConfig, schedule_dag
from repro.ir.ops import DEFAULT_TIMING, TimingModel
from repro.metrics.stats import CorpusStats, aggregate_results
from repro.obs import progress as obs_progress
from repro.perf.cache import load_point_stats, resolve_cache, store_point_stats
from repro.perf.gctune import batched_gc
from repro.perf.parallel import resolve_batch, resolve_jobs, run_cases_parallel
from repro.perf.shm import run_cases_shm
from repro.perf.timers import add_to_current, collect_timings, stage
from repro.synth import genvec
from repro.synth.corpus import BenchmarkCase, generate_cases
from repro.synth.generator import GeneratorConfig

__all__ = ["ExperimentPoint", "run_corpus", "run_point", "sweep"]

#: Corpus size per parameter point; the paper uses 100.
DEFAULT_COUNT = 100


@dataclass(frozen=True)
class ExperimentPoint:
    """One fully specified parameter point of the evaluation."""

    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    timing: TimingModel = DEFAULT_TIMING
    count: int = DEFAULT_COUNT
    master_seed: int = 0

    def with_(self, **changes) -> "ExperimentPoint":
        return replace(self, **changes)


def run_corpus(
    point: ExperimentPoint,
    accept: Callable[[BenchmarkCase], bool] | None = None,
    jobs: int | None = None,
    batch: int | None = None,
    compact: bool = False,
) -> list[ScheduleResult]:
    """Compile and schedule every benchmark of a point; return the results.

    Each case is scheduled with the point's scheduler config, seeded per
    case so random tie-breaking is reproducible yet varies across the
    corpus.  With ``jobs > 1`` the corpus is dispatched to a process
    pool; the result list is bit-identical to the serial run.

    The serial path runs the corpus in *batches* (``None`` consults
    ``REPRO_BATCH``; ``1`` disables): each chunk of attempt seeds is
    compiled by the vectorized generator and scheduled by the batched
    driver (:mod:`repro.core.batchrun`) in one pass, bit-identical to
    the case-at-a-time loop.  Filtered corpora apply ``accept``
    positionally per chunk, exactly like the process pool: the accepted
    prefix matches serial, only unused trailing attempts may differ.

    ``compact=True`` allows the zero-copy shared-memory driver
    (:mod:`repro.perf.shm`) for unfiltered parallel points: results
    come back as :class:`~repro.perf.parallel.CompactResult` rows that
    support aggregation and digests but carry no ``Schedule`` graph.
    Callers that read ``result.schedule`` or ``result.resolutions``
    must leave it off.
    """
    jobs = resolve_jobs(jobs)
    if jobs > 1:
        if compact and accept is None:
            zero_copy = run_cases_shm(
                point.generator,
                point.count,
                point.master_seed,
                point.timing,
                point.scheduler,
                jobs,
            )
            if zero_copy is not None:
                return zero_copy
        parallel = run_cases_parallel(
            point.generator,
            point.count,
            point.master_seed,
            point.timing,
            point.scheduler,
            accept,
            jobs,
        )
        if parallel is not None:
            return parallel

    batch = resolve_batch(batch)
    if batch > 1:
        return _run_corpus_batched(point, accept, batch)

    results: list[ScheduleResult] = []
    cases = generate_cases(
        point.generator,
        point.count,
        point.master_seed,
        timing=point.timing,
        accept=accept,
    )
    with batched_gc():
        while True:
            with stage("generate"):  # pulls generation + compilation work
                case = next(cases, None)
            if case is None:
                break
            cfg = point.scheduler.with_(seed=case.seed & 0xFFFFFFFF)
            with stage("schedule"):
                results.append(schedule_dag(case.dag, cfg))
            obs_progress.advance()
    return results


def _run_corpus_batched(
    point: ExperimentPoint,
    accept: Callable[[BenchmarkCase], bool] | None,
    batch: int,
    max_attempts_factor: int = 50,
) -> list[ScheduleResult]:
    """The serial corpus loop, ``batch`` attempt seeds at a time.

    Draws the exact attempt-seed sequence of
    :func:`repro.synth.corpus.generate_cases` in chunks, compiles each
    chunk through :func:`repro.synth.genvec.compile_cases` and schedules
    it through :func:`repro.core.batchrun.schedule_cases` -- both of
    which fall back to the per-case code paths below their kernel
    thresholds, so the results are bit-identical either way.
    """
    results: list[ScheduleResult] = []
    produced = 0
    attempts = 0
    limit = max(1, point.count) * max_attempts_factor
    seed_stream = random.Random(point.master_seed)
    with batched_gc():
        while produced < point.count:
            if attempts >= limit:
                raise RuntimeError(
                    f"corpus filter accepted only {produced}/{point.count} "
                    f"cases after {attempts} attempts"
                )
            chunk = min(batch, limit - attempts)
            seeds = [seed_stream.getrandbits(48) for _ in range(chunk)]
            attempts += chunk
            with stage("generate"):
                cases = genvec.compile_cases(
                    point.generator, seeds, point.timing
                )
                if accept is not None:
                    cases = [case for case in cases if accept(case)]
            cases = cases[: point.count - produced]
            produced += len(cases)
            configs = [
                point.scheduler.with_(seed=case.seed & 0xFFFFFFFF)
                for case in cases
            ]
            with stage("schedule"):
                results.extend(
                    batchrun.schedule_cases(
                        [case.dag for case in cases], configs
                    )
                )
            obs_progress.advance(len(cases))
    return results


def run_point(
    point: ExperimentPoint,
    accept: Callable[[BenchmarkCase], bool] | None = None,
    jobs: int | None = None,
    cache: bool | None = None,
) -> CorpusStats:
    """:func:`run_corpus` reduced to corpus statistics.

    The reduction carries the run's per-stage timings
    (:attr:`CorpusStats.timings`).  With caching enabled, a previously
    computed point is served from disk (accept-filtered points are
    always recomputed -- a callable has no stable cache key).
    """
    use_cache = accept is None and resolve_cache(cache)
    if use_cache:
        cached = load_point_stats(point)
        if cached is not None:
            return cached
    with collect_timings() as timings:
        # Aggregation reads nothing a compact result lacks, so the
        # zero-copy driver may serve parallel unfiltered points.
        stats = aggregate_results(
            run_corpus(point, accept, jobs=jobs, compact=True)
        )
    # Collectors nest innermost-wins, so an enclosing measurement (e.g.
    # the ``repro-sbm perf`` harness timing a whole sweep) would see none
    # of this point's stage time -- credit it upward explicitly.
    add_to_current(timings)
    stats = replace(stats, timings=timings)
    if use_cache:
        store_point_stats(point, stats)
    return stats


def sweep(
    base: ExperimentPoint,
    axis: str,
    values: Iterable[object],
    jobs: int | None = None,
    cache: bool | None = None,
) -> list[tuple[object, CorpusStats]]:
    """Vary one parameter along ``values`` and run each point.

    ``axis`` is a dotted path into the point, e.g. ``"generator.n_statements"``,
    ``"scheduler.n_pes"``, ``"scheduler.lookahead"``.
    """
    results: list[tuple[object, CorpusStats]] = []
    for value in values:
        results.append(
            (value, run_point(_set_axis(base, axis, value), jobs=jobs, cache=cache))
        )
    return results


def _set_axis(point: ExperimentPoint, axis: str, value: object) -> ExperimentPoint:
    parts = axis.split(".")
    if len(parts) == 1:
        return point.with_(**{parts[0]: value})
    if len(parts) == 2:
        head, leaf = parts
        sub = getattr(point, head)
        return point.with_(**{head: replace(sub, **{leaf: value})})
    raise ValueError(f"unsupported axis {axis!r}")


def sweep_rows(
    results: Sequence[tuple[object, CorpusStats]], axis_label: str
) -> str:
    """Render a sweep as the fixed-width table used by the benchmarks."""
    lines = [
        f"{axis_label:>10}  {'barrier':>8}  {'serial':>8}  {'static':>8}  "
        f"{'no-rt-sync':>10}  {'syncs':>7}  {'barriers':>8}"
    ]
    for value, stats in results:
        lines.append(
            f"{value!s:>10}  {stats.barrier.mean:8.1%}  {stats.serialized.mean:8.1%}  "
            f"{stats.static.mean:8.1%}  {stats.no_runtime_sync.mean:10.1%}  "
            f"{stats.mean_implied_syncs:7.1f}  {stats.mean_barriers:8.2f}"
        )
    return "\n".join(lines)
