"""Table-style experiments: instruction mix, headline ranges, merging,
and the section 5.4 heuristic ablations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments.render import table
from repro.experiments.sweeps import ExperimentPoint, run_corpus, run_point
from repro.ir.ops import ALU_OPCODES, DEFAULT_TIMING, OP_FREQUENCIES, Opcode
from repro.ir.codegen import generate_tuples
from repro.machine.dbm import simulate_dbm
from repro.machine.program import MachineProgram
from repro.machine.sbm import simulate_sbm
from repro.metrics.fractions import fractions_of
from repro.metrics.stats import CorpusStats
from repro.synth.corpus import generate_cases
from repro.synth.generator import GeneratorConfig, generate_block

__all__ = [
    "barrier_cost_experiment",
    "table1_instruction_mix",
    "overall_ranges",
    "merging_experiment",
    "ablation_round_robin",
    "ablation_ordering",
    "ablation_lookahead",
    "ablation_timing_variation",
    "secondary_effect",
    "optimal_vs_conservative",
]


# ---------------------------------------------------------------------------
# E1: Table 1 -- instruction mix and latency table
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InstructionMixResult:
    observed: dict[Opcode, float]  # fraction of ALU tuples per opcode
    expected: dict[Opcode, float]
    max_abs_deviation: float

    def render(self) -> str:
        rows = []
        for op in ALU_OPCODES:
            iv = DEFAULT_TIMING[op]
            rows.append(
                [
                    str(op),
                    f"{self.expected[op]:.1%}",
                    f"{self.observed[op]:.1%}",
                    iv.lo,
                    iv.hi,
                ]
            )
        for op in (Opcode.LOAD, Opcode.STORE):
            iv = DEFAULT_TIMING[op]
            rows.append([str(op), "-", "-", iv.lo, iv.hi])
        return (
            "Table 1: instruction frequencies and execution time ranges\n"
            + table(["instr", "expected", "observed", "min t", "max t"], rows)
            + f"\nmax |observed - expected| = {self.max_abs_deviation:.2%}"
        )


def table1_instruction_mix(
    n_blocks: int = 200, master_seed: int = 1
) -> InstructionMixResult:
    """Check generated (pre-optimization) code matches the Table 1 mix."""
    counts = {op: 0 for op in ALU_OPCODES}
    rng = random.Random(master_seed)
    gen = GeneratorConfig(n_statements=50, n_variables=10)
    for _ in range(n_blocks):
        block = generate_block(gen, random.Random(rng.getrandbits(48)))
        program = generate_tuples(block)
        for tup in program:
            if tup.opcode in counts:
                counts[tup.opcode] += 1
    total = sum(counts.values())
    observed = {op: counts[op] / total for op in ALU_OPCODES}
    expected = {op: OP_FREQUENCIES[op] / 100.0 for op in ALU_OPCODES}
    deviation = max(abs(observed[op] - expected[op]) for op in ALU_OPCODES)
    return InstructionMixResult(observed, expected, deviation)


# ---------------------------------------------------------------------------
# E7: overall ranges across the whole corpus (section 5 bullet list)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OverallRangesResult:
    n_benchmarks: int
    barrier_range: tuple[float, float]
    serialized_range: tuple[float, float]
    static_range: tuple[float, float]
    mean_no_runtime: float

    def render(self) -> str:
        rows = [
            ["barrier", f"{self.barrier_range[0]:.0%}", f"{self.barrier_range[1]:.0%}", "3%..23%"],
            ["serialized", f"{self.serialized_range[0]:.0%}", f"{self.serialized_range[1]:.0%}", "50%..90%"],
            ["static", f"{self.static_range[0]:.0%}", f"{self.static_range[1]:.0%}", "8%..40%"],
        ]
        return (
            f"Overall ranges over {self.n_benchmarks} benchmarks "
            "(per-point corpus means)\n"
            + table(["fraction", "min", "max", "paper"], rows)
            + f"\nmean serialized+static (no runtime sync): {self.mean_no_runtime:.1%}"
            "  (paper: >77%, center of mass ~85%)"
        )


def overall_ranges(
    count_per_point: int = 25, master_seed: int = 7
) -> OverallRangesResult:
    """Scheduling fractions across the full parameter grid (section 5).

    The grid spans the paper's parameter space (statements 5..60+,
    variables 2..15, PEs 2..128); ranges are over per-point means, as the
    paper's bullets summarize curve extremes.
    """
    grid: list[ExperimentPoint] = []
    for stmts in (5, 20, 40, 60, 80, 100):
        for nvars in (2, 5, 10, 15):
            for pes in (2, 8, 32, 128):
                grid.append(
                    ExperimentPoint(
                        generator=GeneratorConfig(n_statements=stmts, n_variables=nvars),
                        scheduler=SchedulerConfig(n_pes=pes),
                        count=count_per_point,
                        master_seed=master_seed + stmts * 1000 + nvars * 10 + pes,
                    )
                )
    stats = [run_point(p) for p in grid]
    barrier = [s.barrier.mean for s in stats]
    serialized = [s.serialized.mean for s in stats]
    static = [s.static.mean for s in stats]
    no_rt = [s.no_runtime_sync.mean for s in stats]
    n = sum(s.n_benchmarks for s in stats)
    return OverallRangesResult(
        n_benchmarks=n,
        barrier_range=(min(barrier), max(barrier)),
        serialized_range=(min(serialized), max(serialized)),
        static_range=(min(static), max(static)),
        mean_no_runtime=float(np.mean(no_rt)),
    )


# ---------------------------------------------------------------------------
# E8: barrier merging (section 4.4.3)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MergingResult:
    mean_barriers_merged: float
    mean_barriers_unmerged: float
    reduction: float
    static_merged: float
    static_unmerged: float
    sbm_mean_completion: float
    dbm_mean_completion: float

    def render(self) -> str:
        rows = [
            ["barriers/schedule", f"{self.mean_barriers_unmerged:.2f}", f"{self.mean_barriers_merged:.2f}"],
            ["static fraction", f"{self.static_unmerged:.1%}", f"{self.static_merged:.1%}"],
        ]
        return (
            "Barrier merging (10 variables, 80 statements; section 4.4.3)\n"
            + table(["metric", "no merging", "merging"], rows)
            + f"\nbarrier reduction: {self.reduction:.1%}  (paper: ~35% fewer)"
            + f"\nsimulated mean completion: SBM {self.sbm_mean_completion:.1f}"
            + f" vs DBM {self.dbm_mean_completion:.1f}"
            + "  (paper: SBM slightly longer, quite close)"
        )


def merging_experiment(
    count: int = 50, master_seed: int = 8, n_pes: int = 8, n_runs: int = 5
) -> MergingResult:
    """Merged vs unmerged barrier counts at the paper's 10-vars/80-stmts
    point, plus simulated SBM-vs-DBM completion times."""
    gen = GeneratorConfig(n_statements=80, n_variables=10)
    merged_barriers, unmerged_barriers = [], []
    static_merged, static_unmerged = [], []
    sbm_times, dbm_times = [], []
    for case in generate_cases(gen, count, master_seed):
        seed = case.seed & 0xFFFFFFFF
        merged = schedule_dag(
            case.dag, SchedulerConfig(n_pes=n_pes, seed=seed, machine="sbm")
        )
        unmerged = schedule_dag(
            case.dag,
            SchedulerConfig(
                n_pes=n_pes, seed=seed, machine="dbm", merge_barriers=False
            ),
        )
        merged_barriers.append(merged.counts.barriers_final)
        unmerged_barriers.append(unmerged.counts.barriers_final)
        static_merged.append(fractions_of(merged).static)
        static_unmerged.append(fractions_of(unmerged).static)

        sbm_prog = MachineProgram.from_schedule(merged.schedule)
        dbm_prog = MachineProgram.from_schedule(unmerged.schedule)
        for run in range(n_runs):
            sbm_times.append(simulate_sbm(sbm_prog, rng=run).makespan)
            dbm_times.append(simulate_dbm(dbm_prog, rng=run).makespan)

    mean_merged = float(np.mean(merged_barriers))
    mean_unmerged = float(np.mean(unmerged_barriers))
    return MergingResult(
        mean_barriers_merged=mean_merged,
        mean_barriers_unmerged=mean_unmerged,
        reduction=1.0 - mean_merged / mean_unmerged if mean_unmerged else 0.0,
        static_merged=float(np.mean(static_merged)),
        static_unmerged=float(np.mean(static_unmerged)),
        sbm_mean_completion=float(np.mean(sbm_times)),
        dbm_mean_completion=float(np.mean(dbm_times)),
    )


# ---------------------------------------------------------------------------
# E9-E12: section 5.4 heuristic ablations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AblationResult:
    title: str
    axis_label: str
    x_values: tuple[object, ...]
    baseline: tuple[CorpusStats, ...]
    variant: tuple[CorpusStats, ...]
    baseline_name: str = "baseline"
    variant_name: str = "variant"
    notes: tuple[str, ...] = ()

    def render(self) -> str:
        rows = []
        for x, b, v in zip(self.x_values, self.baseline, self.variant):
            rows.append(
                [
                    x,
                    f"{b.barrier.mean:.1%}",
                    f"{v.barrier.mean:.1%}",
                    f"{b.serialized.mean:.1%}",
                    f"{v.serialized.mean:.1%}",
                    f"{b.mean_makespan_max:.1f}",
                    f"{v.mean_makespan_max:.1f}",
                ]
            )
        head = [
            self.axis_label,
            f"bar({self.baseline_name})",
            f"bar({self.variant_name})",
            f"ser({self.baseline_name})",
            f"ser({self.variant_name})",
            f"Tmax({self.baseline_name})",
            f"Tmax({self.variant_name})",
        ]
        out = f"{self.title}\n" + table(head, rows)
        if self.notes:
            out += "\n" + "\n".join(self.notes)
        return out


def _paired_ablation(
    title: str,
    axis: str,
    axis_label: str,
    values: Sequence[object],
    base: ExperimentPoint,
    variant_changes: dict,
    baseline_name: str,
    variant_name: str,
    notes: tuple[str, ...] = (),
) -> AblationResult:
    from repro.experiments.sweeps import _set_axis

    baseline_stats, variant_stats = [], []
    for v in values:
        point = _set_axis(base, axis, v)
        baseline_stats.append(run_point(point))
        variant_point = point.with_(
            scheduler=point.scheduler.with_(**variant_changes)
        )
        variant_stats.append(run_point(variant_point))
    return AblationResult(
        title=title,
        axis_label=axis_label,
        x_values=tuple(values),
        baseline=tuple(baseline_stats),
        variant=tuple(variant_stats),
        baseline_name=baseline_name,
        variant_name=variant_name,
        notes=notes,
    )


def ablation_round_robin(
    count: int = 50,
    master_seed: int = 9,
    values: Sequence[int] = (2, 4, 8, 16, 32),
) -> AblationResult:
    """List scheduling vs round-robin assignment (section 5.4)."""
    base = ExperimentPoint(
        generator=GeneratorConfig(n_statements=60, n_variables=10),
        scheduler=SchedulerConfig(),
        count=count,
        master_seed=master_seed,
    )
    return _paired_ablation(
        "Round-robin ablation (60 stmts, 10 vars)",
        "scheduler.n_pes",
        "PEs",
        values,
        base,
        {"assignment": "roundrobin"},
        "list",
        "rrobin",
        notes=(
            "paper: serialization nearly vanishes for many PEs; barrier",
            "fraction rises sharply (toward 50%); both execution times grow,",
            "with the gap narrowing at large PE counts.",
        ),
    )


def ablation_ordering(
    count: int = 50,
    master_seed: int = 10,
    values: Sequence[int] = (4, 8, 16),
) -> AblationResult:
    """h_max-first vs h_min-first list ordering (section 5.4)."""
    base = ExperimentPoint(
        generator=GeneratorConfig(n_statements=60, n_variables=10),
        scheduler=SchedulerConfig(),
        count=count,
        master_seed=master_seed,
    )
    result = _paired_ablation(
        "Ordering ablation: h_max-first vs h_min-first (60 stmts, 10 vars)",
        "scheduler.n_pes",
        "PEs",
        values,
        base,
        {"ordering": "minmax"},
        "maxmin",
        "minmax",
        notes=(
            "paper: the h_min-first ordering trades a slightly better best",
            "case for a slightly worse worst case; changes are quite small.",
        ),
    )
    return result


def ablation_lookahead(
    count: int = 50,
    master_seed: int = 11,
    values: Sequence[int] = (2, 4, 8, 16),
    window: int = 4,
) -> AblationResult:
    """Serialization lookahead window (section 5.4)."""
    base = ExperimentPoint(
        generator=GeneratorConfig(n_statements=60, n_variables=10),
        scheduler=SchedulerConfig(),
        count=count,
        master_seed=master_seed,
    )
    return _paired_ablation(
        f"Lookahead ablation, window p={window} (60 stmts, 10 vars)",
        "scheduler.n_pes",
        "PEs",
        values,
        base,
        {"lookahead": window},
        "none",
        f"p={window}",
        notes=(
            "paper: serialization rises (modestly at many PEs); execution",
            "time +10..30% at few PEs from the longer serial chains, the",
            "increase disappearing at large PE counts.",
        ),
    )


@dataclass(frozen=True)
class TimingVariationResult:
    factors: tuple[float, ...]
    barrier_fraction: tuple[float, ...]
    static_fraction: tuple[float, ...]

    def render(self) -> str:
        rows = [
            [f"{f:g}x", f"{b:.1%}", f"{s:.1%}"]
            for f, b, s in zip(self.factors, self.barrier_fraction, self.static_fraction)
        ]
        return (
            "Timing-variation ablation (60 stmts, 10 vars, 8 PEs)\n"
            + table(["variation", "barrier", "static"], rows)
            + "\npaper: barrier fraction not very sensitive, only slightly"
            + "\nincreasing for large variations."
        )


def ablation_timing_variation(
    count: int = 50,
    master_seed: int = 12,
    factors: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0),
) -> TimingVariationResult:
    """Widen every instruction's timing variation by a factor (section 5.4)."""
    barrier, static = [], []
    for factor in factors:
        timing = DEFAULT_TIMING.scaled(factor)
        point = ExperimentPoint(
            generator=GeneratorConfig(n_statements=60, n_variables=10),
            scheduler=SchedulerConfig(n_pes=8),
            timing=timing,
            count=count,
            master_seed=master_seed,
        )
        stats = run_point(point)
        barrier.append(stats.barrier.mean)
        static.append(stats.static.mean)
    return TimingVariationResult(tuple(factors), tuple(barrier), tuple(static))


# ---------------------------------------------------------------------------
# E13: the figure 7/8 secondary effect (~28%)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SecondaryEffectResult:
    """Two operationalizations of the figure 7/8 effect.

    *timing-only* counts cross-processor edges discharged by a **timing**
    proof that leaned on a previously inserted barrier (a non-initial
    common dominator) -- the mechanism figures 7/8 describe, and the one
    that lands on the paper's ~28%.  *broad* additionally counts PathFind
    hits (pure barrier-chain transitivity).
    """

    timing_only_fraction: float
    broad_fraction: float
    n_timing_secondary: int
    n_path: int
    n_barrier_edges: int

    @property
    def avoided_fraction(self) -> float:
        """Back-compat alias for the broad measure."""
        return self.broad_fraction

    def render(self) -> str:
        return (
            "Secondary effect (section 3, figures 7/8)\n"
            f"timing proofs leaning on an earlier barrier: "
            f"{self.n_timing_secondary}; PathFind hits: {self.n_path}; "
            f"barrier insertions: {self.n_barrier_edges}\n"
            f"timing-only avoidance: {self.timing_only_fraction:.1%}"
            "  (paper: ~28%)\n"
            f"broad avoidance (incl. PathFind): {self.broad_fraction:.1%}"
        )


def secondary_effect(
    count: int = 100, master_seed: int = 13
) -> SecondaryEffectResult:
    """How often an inserted barrier lets later producer/consumer pairs
    resolve statically instead of inserting another barrier."""
    from repro.core.barrier_insert import ResolutionKind

    point = ExperimentPoint(
        generator=GeneratorConfig(n_statements=60, n_variables=10),
        scheduler=SchedulerConfig(n_pes=8),
        count=count,
        master_seed=master_seed,
    )
    results = run_corpus(point)
    n_path = n_timing_sec = n_barrier = 0
    for result in results:
        for res in result.resolutions:
            if res.kind is ResolutionKind.PATH:
                n_path += 1
            elif res.kind is ResolutionKind.TIMING and res.secondary:
                n_timing_sec += 1
            elif res.kind is ResolutionKind.BARRIER:
                n_barrier += 1
    timing_only = (
        n_timing_sec / (n_timing_sec + n_barrier)
        if (n_timing_sec + n_barrier)
        else 0.0
    )
    broad_num = n_timing_sec + n_path
    broad = (
        broad_num / (broad_num + n_barrier) if (broad_num + n_barrier) else 0.0
    )
    return SecondaryEffectResult(
        timing_only_fraction=timing_only,
        broad_fraction=broad,
        n_timing_secondary=n_timing_sec,
        n_path=n_path,
        n_barrier_edges=n_barrier,
    )


# ---------------------------------------------------------------------------
# E14: conservative vs optimal insertion (section 4.4.2)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InsertionComparisonResult:
    mean_barriers_conservative: float
    mean_barriers_optimal: float
    mean_rescues: float
    cases_improved: int
    n_cases: int

    def render(self) -> str:
        return (
            "Conservative vs optimal barrier insertion (section 4.4.2)\n"
            f"mean barriers: conservative {self.mean_barriers_conservative:.2f}, "
            f"optimal {self.mean_barriers_optimal:.2f}\n"
            f"mean timing checks rescued by overlap analysis: {self.mean_rescues:.2f}\n"
            f"benchmarks with fewer barriers under optimal: "
            f"{self.cases_improved}/{self.n_cases}\n"
            "paper: the conservative algorithm was used for all experiments"
            "\nbecause it is much simpler and the results were very good."
        )


def optimal_vs_conservative(
    count: int = 60, master_seed: int = 14, n_pes: int = 8
) -> InsertionComparisonResult:
    """Barrier counts under the two insertion algorithms on one corpus."""
    gen = GeneratorConfig(n_statements=60, n_variables=10)
    cons_barriers, opt_barriers, rescues = [], [], []
    improved = 0
    for case in generate_cases(gen, count, master_seed):
        seed = case.seed & 0xFFFFFFFF
        cons = schedule_dag(
            case.dag, SchedulerConfig(n_pes=n_pes, seed=seed, insertion="conservative")
        )
        opt = schedule_dag(
            case.dag, SchedulerConfig(n_pes=n_pes, seed=seed, insertion="optimal")
        )
        cons_barriers.append(cons.counts.barriers_final)
        opt_barriers.append(opt.counts.barriers_final)
        rescues.append(opt.counts.optimal_rescues)
        if opt.counts.barriers_final < cons.counts.barriers_final:
            improved += 1
    return InsertionComparisonResult(
        mean_barriers_conservative=float(np.mean(cons_barriers)),
        mean_barriers_optimal=float(np.mean(opt_barriers)),
        mean_rescues=float(np.mean(rescues)),
        cases_improved=improved,
        n_cases=count,
    )


# ---------------------------------------------------------------------------
# E15 (extension): cost of non-ideal barrier hardware
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BarrierCostResult:
    latencies: tuple[int, ...]
    mean_makespan_max: tuple[float, ...]
    mean_makespan_min: tuple[float, ...]
    barrier_fraction: tuple[float, ...]

    def render(self) -> str:
        rows = [
            [lat, f"{lo:.1f}", f"{hi:.1f}", f"{bf:.1%}"]
            for lat, lo, hi, bf in zip(
                self.latencies,
                self.mean_makespan_min,
                self.mean_makespan_max,
                self.barrier_fraction,
            )
        ]
        return (
            "Barrier hardware cost (extension; 60 stmts, 10 vars, 8 PEs)\n"
            + table(["latency", "Tmin", "Tmax", "barrier frac"], rows)
            + "\npaper section 5 assumes latency 0 ('barriers ... execute"
            + "\nimmediately'); [OKDi90] studies the hardware this models."
        )


def barrier_cost_experiment(
    count: int = 50,
    master_seed: int = 15,
    latencies: Sequence[int] = (0, 1, 2, 4, 8),
) -> BarrierCostResult:
    """Makespans and fractions as the barrier release latency grows.

    Slower barrier hardware both stretches the schedule directly and
    feeds back into the *scheduler*: later fire times widen downstream
    timing windows, occasionally changing which edges resolve statically.
    """
    lo_means, hi_means, fractions = [], [], []
    for latency in latencies:
        point = ExperimentPoint(
            generator=GeneratorConfig(n_statements=60, n_variables=10),
            scheduler=SchedulerConfig(n_pes=8, barrier_latency=latency),
            count=count,
            master_seed=master_seed,
        )
        stats = run_point(point)
        lo_means.append(stats.mean_makespan_min)
        hi_means.append(stats.mean_makespan_max)
        fractions.append(stats.barrier.mean)
    return BarrierCostResult(
        latencies=tuple(latencies),
        mean_makespan_max=tuple(hi_means),
        mean_makespan_min=tuple(lo_means),
        barrier_fraction=tuple(fractions),
    )
