"""Plain-text rendering of experiment data: tables, line charts, scatter.

The paper's figures are line charts (sync fractions vs a parameter) and
one scatter plot.  These helpers reproduce them as fixed-width text so
the benchmark harness can print the same series the paper plots, with no
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["table", "line_chart", "scatter_plot"]


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with right-aligned columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def line_chart(
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    height: int = 16,
    y_label: str = "",
    y_max: float | None = None,
) -> str:
    """Multi-series text chart: one column per x value, one glyph per series.

    Values are assumed to lie in ``[0, y_max]`` (default: data maximum).
    Collisions render as ``*``.
    """
    glyphs = "BSXOVMLTb"
    names = list(series)
    if not names:
        return "(no series)"
    n = len(x_values)
    for name in names:
        if len(series[name]) != n:
            raise ValueError(f"series {name!r} length mismatch")
    top = y_max if y_max is not None else max(
        (v for vs in series.values() for v in vs), default=1.0
    ) or 1.0

    grid = [[" "] * n for _ in range(height)]
    for s_idx, name in enumerate(names):
        for col, value in enumerate(series[name]):
            frac = min(max(value / top, 0.0), 1.0)
            row = height - 1 - int(round(frac * (height - 1)))
            cell = grid[row][col]
            grid[row][col] = glyphs[s_idx % len(glyphs)] if cell == " " else "*"

    lines = []
    for r, row in enumerate(grid):
        frac = (height - 1 - r) / (height - 1)
        label = f"{frac * top:6.1%} |" if top <= 1.0 else f"{frac * top:6.1f} |"
        lines.append(label + "  ".join(row))
    lines.append(" " * 7 + "+" + "-" * (3 * n - 2))
    xcells = "  ".join(str(x)[0] for x in x_values)
    lines.append(" " * 8 + xcells)
    lines.append("x: " + " ".join(str(x) for x in x_values))
    legend = "  ".join(f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(names))
    lines.append("legend: " + legend + "  (*=overlap)")
    if y_label:
        lines.append(f"y: {y_label}")
    return "\n".join(lines)


def scatter_plot(
    points: Sequence[tuple[float, float]],
    width: int = 60,
    height: int = 24,
    x_label: str = "x",
    y_label: str = "y",
    x_range: tuple[float, float] = (0.0, 1.0),
    y_range: tuple[float, float] = (0.0, 1.0),
) -> str:
    """Density scatter: digits show how many points fall in a cell (9+ = '#')."""
    grid = [[0] * width for _ in range(height)]
    x_lo, x_hi = x_range
    y_lo, y_hi = y_range
    for x, y in points:
        cx = int((x - x_lo) / (x_hi - x_lo or 1) * (width - 1))
        cy = int((y - y_lo) / (y_hi - y_lo or 1) * (height - 1))
        cx = min(max(cx, 0), width - 1)
        cy = min(max(cy, 0), height - 1)
        grid[height - 1 - cy][cx] += 1

    lines = []
    for r, row in enumerate(grid):
        frac = (height - 1 - r) / (height - 1)
        label = f"{y_lo + frac * (y_hi - y_lo):5.0%} |"
        body = "".join(
            " " if c == 0 else (str(c) if c < 10 else "#") for c in row
        )
        lines.append(label + body)
    lines.append(" " * 6 + "+" + "-" * width)
    lines.append(" " * 7 + f"{x_lo:<8.0%}{x_label:^{width - 16}}{x_hi:>8.0%}")
    lines.append(f"y: {y_label}")
    return "\n".join(lines)
