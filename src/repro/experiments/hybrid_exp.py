"""E20: static vs ε-hardened vs hybrid under timing faults.

E19 measured the two extremes of the robustness trade: pure-static
scheduling (fast, races once slack runs out) and ε-hardening (race-free
by construction, pays extra barriers everywhere the inflated model
fails).  This experiment adds the middle road built in
:mod:`repro.hybrid`: keep the static skeleton, demote only the fragile
timing edges to dynamic data guards, and resolve those at runtime under
a timeout/bounded-retry watchdog.

For each fault level (ε sweep, then straggler counts at the highest ε),
every benchmark of a seeded corpus is campaigned three ways with the
*same* seeds:

* **static** -- the raw schedule: its survival rate is the baseline the
  hybrid must strictly dominate;
* **hardened** -- ε-hardened against the exact plan: survival is 1.0 by
  the soundness theorem, but the makespan overhead is the price floor
  hybrid must undercut;
* **hybrid** -- the same schedule with fragile edges guarded, budget set
  to the plan's worst-case stretch: races become recovered guard waits
  (``n_guard_saves``) or, past the watchdog, reported stalls.

Makespan overheads are *observed* (mean simulated makespan under the
plan, relative to the static schedule's own mean at the same level), so
the hybrid's pay-only-when-faulted property is visible: with few faults
its overhead hugs zero while hardening pays its barriers on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.faults import FaultPlan, harden_schedule, run_campaign
from repro.hybrid import hybridize_schedule
from repro.synth.corpus import generate_cases
from repro.synth.generator import GeneratorConfig

__all__ = ["HybridPoint", "HybridResult", "hybrid_experiment"]

DEFAULT_EPSILONS = (0.0, 0.1, 0.25, 0.5)
DEFAULT_STRAGGLERS = (1, 2)


@dataclass(frozen=True)
class HybridPoint:
    """All three strategies at one fault level, aggregated over the corpus."""

    epsilon: float
    n_stragglers: int
    n_cases: int
    n_runs: int  # total campaign runs per strategy
    survival_static: float
    survival_hardened: float
    survival_hybrid: float
    #: Mean observed makespan overhead vs the static schedule's own mean
    #: at this fault level (0.0 == no price paid).
    overhead_hardened: float
    overhead_hybrid: float
    mean_extra_barriers: float
    mean_demotions: float
    guard_saves: int
    guard_stalls: int
    deadlocks: int

    @property
    def label(self) -> str:
        if self.n_stragglers:
            return f"{self.epsilon:g}+{self.n_stragglers}s"
        return f"{self.epsilon:g}"


@dataclass(frozen=True)
class HybridResult:
    """The static-vs-hardened-vs-hybrid robustness study (E20)."""

    machine: str
    n_pes: int
    runs_per_case: int
    points: tuple[HybridPoint, ...]

    def render(self) -> str:
        lines = [
            f"hybrid robustness study: {self.points[0].n_cases} benchmarks, "
            f"{self.n_pes} PEs {self.machine.upper()}, "
            f"{self.runs_per_case} random runs/case + directed witnesses",
            f"{'level':>8}  {'static':>7}  {'hardened':>8}  {'hybrid':>7}  "
            f"{'+mk hard':>8}  {'+mk hyb':>8}  {'+barr':>6}  {'demote':>6}  "
            f"{'saves':>6}  {'stalls':>6}",
        ]
        for p in self.points:
            lines.append(
                f"{p.label:>8}  {p.survival_static:7.1%}  "
                f"{p.survival_hardened:8.1%}  {p.survival_hybrid:7.1%}  "
                f"{p.overhead_hardened:8.1%}  {p.overhead_hybrid:8.1%}  "
                f"{p.mean_extra_barriers:6.2f}  {p.mean_demotions:6.2f}  "
                f"{p.guard_saves:6d}  {p.guard_stalls:6d}"
            )
        if any(p.deadlocks for p in self.points):
            lines.append(
                "deadlocks: "
                + ", ".join(
                    f"{p.label}: {p.deadlocks}" for p in self.points if p.deadlocks
                )
            )
        return "\n".join(lines)


def hybrid_experiment(
    count: int = 15,
    epsilons: tuple[float, ...] = DEFAULT_EPSILONS,
    stragglers: tuple[int, ...] = DEFAULT_STRAGGLERS,
    machine: str = "sbm",
    runs: int = 15,
    n_statements: int = 30,
    n_pes: int = 4,
    master_seed: int = 0,
    jobs: int | None = 1,
) -> HybridResult:
    """Sweep fault levels; campaign each schedule static, hardened, hybrid.

    The sweep runs every ε with no stragglers, then adds each straggler
    count at the highest ε (a straggler multiplies the per-instruction
    budget, so that corner is the hardest).  All three campaigns of a
    case share the same seeds, making the three survival rates directly
    comparable run-for-run.
    """
    cases = list(
        generate_cases(GeneratorConfig(n_statements=n_statements), count, master_seed)
    )
    schedules = []
    for case in cases:
        cfg = SchedulerConfig(
            n_pes=n_pes, machine=machine, seed=case.seed & 0xFFFFFFFF
        )
        schedules.append(schedule_dag(case.dag, cfg).schedule)

    levels: list[tuple[float, int]] = [(eps, 0) for eps in epsilons]
    top = max(epsilons) if epsilons else 0.0
    if top > 0:
        levels.extend((top, s) for s in stragglers if s > 0)

    points = []
    for eps, n_strag in levels:
        plan = FaultPlan(
            epsilon=eps, straggler_pes=frozenset(range(min(n_strag, n_pes)))
        )
        merge = machine == "sbm"
        totals = {"static": 0, "hardened": 0, "hybrid": 0}
        survived = {"static": 0, "hardened": 0, "hybrid": 0}
        makespan = {"static": 0.0, "hardened": 0.0, "hybrid": 0.0}
        extra_barriers = 0
        demotions = 0
        saves = 0
        stalls = 0
        deadlocks = 0
        for case, schedule in zip(cases, schedules):
            seed = case.seed & 0xFFFFFFFF
            static = run_campaign(
                schedule, machine, plan, runs=runs, seed=seed, jobs=jobs
            )
            hard = harden_schedule(schedule, plan=plan, merge=merge)
            hardened = run_campaign(
                hard.schedule, machine, plan, runs=runs, seed=seed, jobs=jobs
            )
            hyb = hybridize_schedule(schedule, plan.worst_stretch)
            hybrid = run_campaign(
                schedule, machine, plan, runs=runs, seed=seed, hybrid=hyb, jobs=jobs
            )
            for name, rep in (
                ("static", static), ("hardened", hardened), ("hybrid", hybrid)
            ):
                totals[name] += rep.n_runs
                survived[name] += round(rep.survival_rate * rep.n_runs)
                makespan[name] += rep.mean_makespan
            extra_barriers += hard.extra_barriers
            demotions += hyb.n_demoted
            saves += hybrid.n_guard_saves
            stalls += hybrid.n_stalls
            deadlocks += static.n_deadlocks + hardened.n_deadlocks + hybrid.n_deadlocks

        def overhead(name: str) -> float:
            if makespan["static"] == 0:
                return 0.0
            return makespan[name] / makespan["static"] - 1.0

        points.append(
            HybridPoint(
                epsilon=eps,
                n_stragglers=n_strag,
                n_cases=len(cases),
                n_runs=totals["static"],
                survival_static=survived["static"] / max(totals["static"], 1),
                survival_hardened=survived["hardened"] / max(totals["hardened"], 1),
                survival_hybrid=survived["hybrid"] / max(totals["hybrid"], 1),
                overhead_hardened=overhead("hardened"),
                overhead_hybrid=overhead("hybrid"),
                mean_extra_barriers=extra_barriers / len(cases),
                mean_demotions=demotions / len(cases),
                guard_saves=saves,
                guard_stalls=stalls,
                deadlocks=deadlocks,
            )
        )

    return HybridResult(
        machine=machine, n_pes=n_pes, runs_per_case=runs, points=tuple(points)
    )
