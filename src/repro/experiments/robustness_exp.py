"""E19: the fault-tolerance curve -- how much overrun until schedules break.

The paper's soundness argument is all-or-nothing: *if* every instruction
respects its ``[min,max]`` interval, no run-time race is possible.  This
experiment measures what lies beyond the "if".  For each ε in a sweep,
every benchmark of a seeded corpus is scheduled normally, attacked by a
Monte-Carlo fault campaign (multiplicative overruns of up to ε per
instruction, random plus directed-witness runs), then ε-hardened and
attacked again with the *same* seeds.

Three curves fall out:

* the fraction of schedules with at least one observed race, rising
  with ε as timing-proof slack is consumed;
* the same fraction after hardening -- the soundness of
  :func:`~repro.faults.harden.harden_schedule` predicts identically
  zero at every ε, which the campaign verifies empirically;
* the price paid: mean extra barriers and worst-case makespan growth.

At ε = 0 the plan is null and both curves must be zero on both machines
-- that row doubles as a regression check of the whole simulator stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.faults import FaultPlan, harden_schedule, robustness_margin, run_campaign
from repro.metrics.robustness import (
    CaseRobustness,
    RobustnessPoint,
    aggregate_robustness,
)
from repro.synth.corpus import generate_cases
from repro.synth.generator import GeneratorConfig

__all__ = ["RobustnessResult", "robustness_experiment"]

DEFAULT_EPSILONS = (0.0, 0.1, 0.25, 0.5)


@dataclass(frozen=True)
class RobustnessResult:
    """The fault-tolerance curve for one corpus and machine."""

    machine: str
    n_pes: int
    runs_per_case: int
    points: tuple[RobustnessPoint, ...]

    def render(self) -> str:
        lines = [
            f"fault-tolerance curve: {self.points[0].n_cases} benchmarks, "
            f"{self.n_pes} PEs {self.machine.upper()}, "
            f"{self.runs_per_case} random runs/case + directed witnesses",
            f"{'eps':>6}  {'racy':>7}  {'races':>7}  {'hardened-racy':>13}  "
            f"{'eps*>=eps':>9}  {'+barriers':>9}  {'makespan':>9}",
        ]
        for p in self.points:
            lines.append(
                f"{p.epsilon:6.2f}  {p.racy_fraction:7.1%}  {p.mean_races:7.2f}  "
                f"{p.racy_fraction_hardened:13.1%}  {p.covered_fraction:9.1%}  "
                f"{p.mean_extra_barriers:9.2f}  {p.mean_makespan_overhead:8.1%}+"
            )
        if any(p.n_deadlocks for p in self.points):
            lines.append(
                "deadlocks: "
                + ", ".join(
                    f"eps={p.epsilon:g}: {p.n_deadlocks}"
                    for p in self.points
                    if p.n_deadlocks
                )
            )
        return "\n".join(lines)


def robustness_experiment(
    count: int = 25,
    epsilons: tuple[float, ...] = DEFAULT_EPSILONS,
    machine: str = "sbm",
    runs: int = 20,
    n_statements: int = 30,
    n_pes: int = 4,
    master_seed: int = 0,
) -> RobustnessResult:
    """Sweep ε over a seeded corpus; campaign each schedule raw and hardened.

    Small blocks on few processors are deliberately chosen: they maximize
    the share of timing-proved (statically discharged) edges, which are
    the only edges fault injection can break.
    """
    cases = list(
        generate_cases(GeneratorConfig(n_statements=n_statements), count, master_seed)
    )
    schedules = []
    for case in cases:
        cfg = SchedulerConfig(
            n_pes=n_pes, machine=machine, seed=case.seed & 0xFFFFFFFF
        )
        schedules.append(schedule_dag(case.dag, cfg).schedule)

    points = []
    for eps in epsilons:
        plan = FaultPlan(epsilon=eps)
        batch = []
        for case, schedule in zip(cases, schedules):
            seed = case.seed & 0xFFFFFFFF
            margin = robustness_margin(schedule)
            before = run_campaign(
                schedule, machine, plan, runs=runs, seed=seed
            )
            hard = harden_schedule(schedule, plan=plan, merge=machine == "sbm")
            after = run_campaign(
                hard.schedule, machine, plan, runs=runs, seed=seed
            )
            batch.append(
                CaseRobustness(
                    epsilon=eps,
                    n_timing_edges=margin.n_timing,
                    epsilon_star=margin.epsilon_star,
                    races_unhardened=len(before.blames),
                    races_hardened=len(after.blames),
                    extra_barriers=hard.extra_barriers,
                    makespan_overhead=hard.makespan_overhead,
                    deadlocks=before.n_deadlocks + after.n_deadlocks,
                )
            )
        points.append(aggregate_robustness(batch))

    return RobustnessResult(
        machine=machine, n_pes=n_pes, runs_per_case=runs, points=tuple(points)
    )
