"""Gantt rendering of one simulated execution trace.

Each processor gets a row; instruction executions are drawn as runs of a
per-instruction glyph, idle/waiting time as ``.``, and barrier fire
instants as ``|`` on every participating row.
"""

from __future__ import annotations

from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.trace import ExecutionTrace

__all__ = ["render_gantt"]


def render_gantt(
    program: MachineProgram,
    trace: ExecutionTrace,
    width: int = 100,
) -> str:
    """Draw ``trace`` as a text Gantt chart (one column ~= one time unit,
    scaled down when the makespan exceeds ``width``)."""
    span = max(trace.makespan, 1)
    scale = max(1, -(-span // width))  # ceil division: time units per column
    cols = -(-span // scale)

    def col(t: int) -> int:
        return min(t // scale, cols - 1)

    lines = [
        f"time 0..{span} ({scale} unit{'s' if scale > 1 else ''}/column)",
    ]
    for pe, stream in enumerate(program.streams):
        row = ["."] * cols
        busy = 0
        for item in stream:
            if isinstance(item, MachineOp):
                start = trace.start[item.node]
                finish = trace.finish[item.node]
                busy += finish - start
                glyph = _glyph(item)
                for c in range(col(start), max(col(start) + 1, col(finish))):
                    row[c] = glyph
        # Barrier markers after ops so the fire columns survive downscaling.
        for item in stream:
            if isinstance(item, BarrierRef):
                t = trace.barrier_fire.get(item.barrier_id)
                if t is not None:
                    row[col(t)] = "|"
        util = busy / span
        lines.append(f"PE{pe:<3}{''.join(row)}  {util:4.0%} busy")
    fires = " ".join(
        f"b{bid}@{t}" for bid, t in sorted(trace.barrier_fire.items(), key=lambda kv: kv[1])
    )
    lines.append(f"fires: {fires}")
    lines.append("legend: letter=opcode initial, |=barrier fire, .=idle/wait")
    return "\n".join(lines)


def _glyph(op: MachineOp) -> str:
    mnemonic = op.mnemonic or str(op.node)
    for ch in mnemonic:
        if ch.isalpha():
            return ch.upper()
    return "#"
