"""Plain-text visualization of schedules and executions.

:func:`render_embedding` draws the barrier embedding of figure 9
(vertical processor streams crossed by horizontal barrier lines);
:func:`render_gantt` draws a timeline of one simulated execution; and
:func:`render_barrier_dag` pretty-prints the barrier partial order with
fire-time windows.
"""

from repro.viz.embedding import render_embedding, render_barrier_dag
from repro.viz.gantt import render_gantt
from repro.viz.dot import barrier_dag_to_dot, cfg_to_dot, instruction_dag_to_dot

__all__ = [
    "render_embedding",
    "render_barrier_dag",
    "render_gantt",
    "barrier_dag_to_dot",
    "cfg_to_dot",
    "instruction_dag_to_dot",
]
