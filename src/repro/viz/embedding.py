"""Figure 9 style barrier-embedding diagrams.

Processors are vertical columns; time flows downward; a barrier is a
horizontal rule spanning exactly its participants, labeled with its id.
Instructions show their node label (and mnemonic when the DAG carries
tuple payloads).

Example (3 PEs)::

    PE0        PE1        PE2
    =========b0==========>
    Load a     Load b     .
    ====b1====>           .
    Add 0,1    .          Load c
    ==========b2=========>
"""

from __future__ import annotations

from repro.barriers.model import Barrier
from repro.core.schedule import Schedule
from repro.ir.tuples import IRTuple

__all__ = ["render_embedding", "render_barrier_dag"]

_COL = 12


def _label(schedule: Schedule, node: object) -> str:
    payload = schedule.dag.payload(node)
    if isinstance(payload, IRTuple):
        return payload.render()[: _COL - 2]
    return str(node)[: _COL - 2]


def render_embedding(schedule: Schedule) -> str:
    """Draw the schedule as a figure 9 style barrier embedding."""
    n = schedule.n_pes
    # Build a global row sequence: walk all streams in lockstep; barriers
    # synchronize the walk (every participant must reach the barrier
    # before its rule is drawn).
    cursors = [1] * n  # skip b0 at position 0
    rows: list[str] = []
    header = "".join(f"PE{pe}".ljust(_COL) for pe in range(n))
    rows.append(header)
    rows.append(_barrier_rule(schedule.initial_barrier, n))

    def next_barrier(pe: int) -> Barrier | None:
        stream = schedule.streams[pe]
        for item in stream[cursors[pe]:]:
            if isinstance(item, Barrier):
                return item
        return None

    active = [pe for pe in range(n) if cursors[pe] < len(schedule.streams[pe])]
    guard = sum(len(s) for s in schedule.streams) + len(schedule.barriers()) + 4
    for _ in range(guard):
        active = [pe for pe in range(n) if cursors[pe] < len(schedule.streams[pe])]
        if not active:
            break
        # Emit one row of instructions: every active PE whose next item is
        # an instruction advances; PEs waiting at a barrier print '.'.
        line = []
        progressed = False
        waiting_barriers: dict[int, Barrier] = {}
        for pe in range(n):
            stream = schedule.streams[pe]
            if cursors[pe] >= len(stream):
                line.append(" " * _COL)
                continue
            item = stream[cursors[pe]]
            if isinstance(item, Barrier):
                waiting_barriers[pe] = item
                line.append(".".ljust(_COL))
            else:
                line.append(_label(schedule, item).ljust(_COL))
                cursors[pe] += 1
                progressed = True
        if progressed:
            rows.append("".join(line).rstrip())
        # Fire every barrier whose participants are all waiting at it.
        for barrier in list(dict.fromkeys(waiting_barriers.values())):
            ready = all(
                waiting_barriers.get(pe) is barrier for pe in barrier.participants
            )
            if ready:
                rows.append(_barrier_rule(barrier, n))
                for pe in barrier.participants:
                    cursors[pe] += 1
                progressed = True
        if not progressed:
            rows.append("!! deadlocked rendering (inconsistent schedule)")
            break
    return "\n".join(rows)


def _barrier_rule(barrier: Barrier, n_pes: int) -> str:
    lo = min(barrier.participants)
    hi = max(barrier.participants)
    label = f"b{barrier.id}"
    cells = []
    for pe in range(n_pes):
        if lo <= pe <= hi:
            cells.append("=" * _COL)
        else:
            cells.append(" " * _COL)
    rule = "".join(cells)
    # Stamp the label near the left edge of the spanned region.
    pos = lo * _COL + 2
    rule = rule[:pos] + label + rule[pos + len(label):]
    return rule[: (hi + 1) * _COL].rstrip() + ">"


def render_barrier_dag(schedule: Schedule) -> str:
    """Pretty-print the barrier partial order with fire-time windows."""
    bd = schedule.barrier_dag()
    fire = bd.fire_times()
    lines = ["barrier dag (B, <_b):"]
    for bid in bd.barrier_ids:
        barrier = bd.barrier(bid)
        succs = ", ".join(
            f"b{s} {bd.weight(bid, s)}" for s in sorted(bd.succs(bid))
        )
        pes = ",".join(str(p) for p in sorted(barrier.participants))
        lines.append(
            f"  b{bid:<3} fire={fire[bid]!s:<10} PEs[{pes}] -> {succs or '(sink)'}"
        )
    return "\n".join(lines)
