"""Graphviz DOT export for the repository's three graph types.

* :func:`instruction_dag_to_dot` -- the figure 2 instruction DAG, nodes
  labeled with their tuple rendering and ``[min,max]`` latency;
* :func:`barrier_dag_to_dot` -- the figure 10 barrier dag, edges labeled
  with region time intervals and nodes with fire windows;
* :func:`cfg_to_dot` -- the control-flow extension's basic-block graph.

Output is plain DOT text (no graphviz dependency); pipe it to ``dot
-Tsvg`` if graphviz is installed.  All identifiers are quoted/escaped,
so arbitrary node payloads are safe.
"""

from __future__ import annotations

from repro.barriers.dag import BarrierDag
from repro.core.schedule import Schedule
from repro.flow.cfg import CFG, Branch, ExitTerm, Jump
from repro.ir.dag import InstructionDAG
from repro.ir.tuples import IRTuple

__all__ = ["instruction_dag_to_dot", "barrier_dag_to_dot", "cfg_to_dot"]


def _quote(text: object) -> str:
    escaped = str(text).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _label(lines: list[str]) -> str:
    return _quote("\\n".join(lines)).replace("\\\\n", "\\n")


def instruction_dag_to_dot(
    dag: InstructionDAG, name: str = "instruction_dag"
) -> str:
    """DOT for the instruction DAG (real nodes only)."""
    out = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [shape=box];"]
    for node in dag.real_nodes:
        payload = dag.payload(node)
        desc = payload.render() if isinstance(payload, IRTuple) else str(node)
        latency = dag.latency(node)
        out.append(
            f"  {_quote(node)} [label={_label([desc, str(latency)])}];"
        )
    for u, v in dag.real_edges():
        out.append(f"  {_quote(u)} -> {_quote(v)};")
    out.append("}")
    return "\n".join(out)


def barrier_dag_to_dot(source: Schedule | BarrierDag, name: str = "barrier_dag") -> str:
    """DOT for the barrier dag; accepts a Schedule or a BarrierDag."""
    bd = source.barrier_dag() if isinstance(source, Schedule) else source
    fire = bd.fire_times()
    out = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [shape=ellipse];"]
    for bid in bd.barrier_ids:
        barrier = bd.barrier(bid)
        pes = ",".join(str(p) for p in sorted(barrier.participants))
        lines = [f"b{bid}", f"PEs {{{pes}}}", f"fire {fire[bid]}"]
        shape = ' shape=doublecircle' if barrier.is_initial else ""
        out.append(f"  {_quote(f'b{bid}')} [label={_label(lines)}{shape}];")
    for edge in bd.edges():
        out.append(
            f"  {_quote(f'b{edge.src}')} -> {_quote(f'b{edge.dst}')} "
            f"[label={_quote(edge.weight)}];"
        )
    out.append("}")
    return "\n".join(out)


def cfg_to_dot(cfg: CFG, name: str = "cfg") -> str:
    """DOT for a control-flow graph of basic blocks."""
    out = [f"digraph {_quote(name)} {{", "  node [shape=box];"]
    for bid in sorted(cfg.blocks):
        block = cfg.blocks[bid]
        lines = [f"B{bid}"] + [str(stmt) for stmt in block.statements[:6]]
        if len(block.statements) > 6:
            lines.append(f"... +{len(block.statements) - 6} more")
        if isinstance(block.terminator, ExitTerm):
            lines.append("(exit)")
        out.append(f"  {_quote(f'B{bid}')} [label={_label(lines)}];")
    for bid in sorted(cfg.blocks):
        term = cfg.blocks[bid].terminator
        if isinstance(term, Jump):
            out.append(f"  {_quote(f'B{bid}')} -> {_quote(f'B{term.target}')};")
        elif isinstance(term, Branch):
            out.append(
                f"  {_quote(f'B{bid}')} -> {_quote(f'B{term.true_target}')} "
                f"[label={_quote(term.cond)} color=darkgreen];"
            )
            out.append(
                f"  {_quote(f'B{bid}')} -> {_quote(f'B{term.false_target}')} "
                f"[style=dashed color=crimson];"
            )
    out.append("}")
    return "\n".join(out)
