"""Parser for the structured language (extension of :mod:`repro.ir.parser`).

Grammar::

    program   ::= stmt*
    stmt      ::= assign | if_stmt | while_stmt
    assign    ::= IDENT '=' expr ';'?
    if_stmt   ::= 'if' '(' expr ')' block ('else' block)?
    while_stmt::= 'while' '(' expr ')' block
    block     ::= '{' stmt* '}'

Expressions are exactly those of the base language.  ``if``, ``else``
and ``while`` are reserved words; they cannot be used as variable names.
"""

from __future__ import annotations

from repro.flow.ast import FlowProgram, IfStmt, Stmt, WhileStmt
from repro.ir.parser import ParseError, Token, tokenize, _Parser

__all__ = ["parse_program", "KEYWORDS"]

KEYWORDS = frozenset({"if", "else", "while"})

# Braces are not tokens of the base language; extend the tokenizer by
# treating them here (the base tokenizer rejects them, so we pre-split).
_BRACES = {"{", "}"}


def _tokenize_flow(source: str) -> list[Token]:
    # Pad braces with spaces, then run the base tokenizer on a version
    # where braces are temporarily encoded as parens pairs it accepts?
    # Simpler: split on braces manually, tokenizing the pieces, and emit
    # synthetic punct tokens for the braces themselves.
    tokens: list[Token] = []
    line_no = 1
    for raw_line in source.splitlines():
        line = raw_line.split("//", 1)[0]
        col = 0
        buf_start = 0
        while col <= len(line):
            ch = line[col] if col < len(line) else None
            if ch in _BRACES or ch is None:
                piece = line[buf_start:col]
                if piece.strip():
                    for tok in tokenize(piece):
                        if tok.kind != "eof":
                            tokens.append(
                                Token(tok.kind, tok.text, line_no, buf_start + tok.column)
                            )
                if ch in _BRACES:
                    tokens.append(Token("punct", ch, line_no, col + 1))
                buf_start = col + 1
            col += 1
        line_no += 1
    tokens.append(Token("eof", "", line_no, 1))
    return tokens


class _FlowParser(_Parser):
    def program(self) -> FlowProgram:
        statements: list[Stmt] = []
        while self._current.kind != "eof":
            statements.append(self.flow_statement())
        return FlowProgram(tuple(statements))

    def flow_statement(self) -> Stmt:
        tok = self._current
        if tok.kind == "ident" and tok.text == "if":
            return self.if_statement()
        if tok.kind == "ident" and tok.text == "while":
            return self.while_statement()
        if tok.kind == "ident" and tok.text in KEYWORDS:
            raise self._error(f"keyword {tok.text!r} cannot start a statement here")
        stmt = self.statement()
        if stmt.target in KEYWORDS:
            raise ParseError(
                f"{stmt.target!r} is a reserved word", tok.line, tok.column
            )
        return stmt

    def _block(self) -> tuple[Stmt, ...]:
        self._expect_punct("{")
        body: list[Stmt] = []
        while not (self._current.kind == "punct" and self._current.text == "}"):
            if self._current.kind == "eof":
                raise self._error("unterminated block: missing '}'")
            body.append(self.flow_statement())
        self._expect_punct("}")
        return tuple(body)

    def if_statement(self) -> IfStmt:
        self._advance()  # 'if'
        self._expect_punct("(")
        cond = self.expr()
        self._expect_punct(")")
        then_body = self._block()
        else_body: tuple[Stmt, ...] = ()
        if self._current.kind == "ident" and self._current.text == "else":
            self._advance()
            else_body = self._block()
        return IfStmt(cond, then_body, else_body)

    def while_statement(self) -> WhileStmt:
        self._advance()  # 'while'
        self._expect_punct("(")
        cond = self.expr()
        self._expect_punct(")")
        body = self._block()
        return WhileStmt(cond, body)


def parse_program(source: str) -> FlowProgram:
    """Parse a structured program (assignments, if/else, while)."""
    parser = _FlowParser(_tokenize_flow(source))
    return parser.program()
