"""Lowering structured programs to a control-flow graph of basic blocks.

Each :class:`BasicBlockNode` holds straight-line assignments (the unit
the paper's scheduler accepts) and ends in a terminator:

* :class:`Jump` -- unconditional successor;
* :class:`Branch` -- two-way branch on an expression (nonzero = true);
* :class:`ExitTerm` -- program exit.

The construction is the classic structured lowering: ``if`` produces a
diamond, ``while`` produces a loop header block that evaluates the
condition.  Condition expressions stay attached to the *terminator*; the
block compiler (:mod:`repro.flow.schedule`) materializes them as tuples
feeding a reserved ``.branch`` store so the scheduler and optimizer can
treat them like any other value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.flow.ast import FlowProgram, IfStmt, WhileStmt
from repro.ir.ast import Assign, Expr

__all__ = ["Jump", "Branch", "ExitTerm", "Terminator", "BasicBlockNode", "CFG", "build_cfg"]


@dataclass(frozen=True)
class Jump:
    target: int

    def __str__(self) -> str:
        return f"jump B{self.target}"


@dataclass(frozen=True)
class Branch:
    cond: Expr
    true_target: int
    false_target: int

    def __str__(self) -> str:
        return f"branch ({self.cond}) ? B{self.true_target} : B{self.false_target}"


@dataclass(frozen=True)
class ExitTerm:
    def __str__(self) -> str:
        return "exit"


Terminator = Union[Jump, Branch, ExitTerm]


@dataclass
class BasicBlockNode:
    """One straight-line region plus its terminator."""

    id: int
    statements: list[Assign] = field(default_factory=list)
    terminator: Terminator = field(default_factory=ExitTerm)

    def render(self) -> str:
        body = "\n".join(f"    {stmt}" for stmt in self.statements) or "    (empty)"
        return f"B{self.id}:\n{body}\n    {self.terminator}"


@dataclass
class CFG:
    """A control-flow graph with a single entry block (id 0)."""

    blocks: dict[int, BasicBlockNode]
    entry: int = 0

    def __len__(self) -> int:
        return len(self.blocks)

    def successors(self, block_id: int) -> tuple[int, ...]:
        term = self.blocks[block_id].terminator
        if isinstance(term, Jump):
            return (term.target,)
        if isinstance(term, Branch):
            return (term.true_target, term.false_target)
        return ()

    def render(self) -> str:
        return "\n".join(
            self.blocks[bid].render() for bid in sorted(self.blocks)
        )

    # -- reference CFG-level execution (for lowering correctness tests) ----

    def execute(
        self, env: Mapping[str, int], max_blocks: int = 10_000
    ) -> dict[str, int]:
        state = dict(env)
        current = self.entry
        for _ in range(max_blocks):
            block = self.blocks[current]
            for stmt in block.statements:
                state[stmt.target] = stmt.expr.evaluate(state)
            term = block.terminator
            if isinstance(term, ExitTerm):
                return state
            if isinstance(term, Jump):
                current = term.target
            else:
                taken = term.cond.evaluate(state) != 0
                current = term.true_target if taken else term.false_target
        raise RuntimeError(f"CFG execution exceeded {max_blocks} blocks")


class _Builder:
    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlockNode] = {}
        self._next_id = 0

    def new_block(self) -> BasicBlockNode:
        block = BasicBlockNode(self._next_id)
        self.blocks[block.id] = block
        self._next_id += 1
        return block

    def lower(self, stmts, current: BasicBlockNode) -> BasicBlockNode:
        """Emit ``stmts`` starting in ``current``; return the block that
        control falls through to afterwards."""
        for stmt in stmts:
            if isinstance(stmt, Assign):
                current.statements.append(stmt)
            elif isinstance(stmt, IfStmt):
                then_entry = self.new_block()
                join = self.new_block()
                if stmt.else_body:
                    else_entry = self.new_block()
                    current.terminator = Branch(
                        stmt.cond, then_entry.id, else_entry.id
                    )
                    else_exit = self.lower(stmt.else_body, else_entry)
                    else_exit.terminator = Jump(join.id)
                else:
                    current.terminator = Branch(stmt.cond, then_entry.id, join.id)
                then_exit = self.lower(stmt.then_body, then_entry)
                then_exit.terminator = Jump(join.id)
                current = join
            elif isinstance(stmt, WhileStmt):
                header = self.new_block()
                body_entry = self.new_block()
                after = self.new_block()
                current.terminator = Jump(header.id)
                header.terminator = Branch(stmt.cond, body_entry.id, after.id)
                body_exit = self.lower(stmt.body, body_entry)
                body_exit.terminator = Jump(header.id)
                current = after
            else:  # pragma: no cover - parser prevents this
                raise TypeError(f"unknown statement {stmt!r}")
        return current


def build_cfg(program: FlowProgram) -> CFG:
    """Lower a structured program to its control-flow graph."""
    builder = _Builder()
    entry = builder.new_block()
    exit_block = builder.lower(program.statements, entry)
    exit_block.terminator = ExitTerm()
    return CFG(blocks=builder.blocks, entry=entry.id)
