"""Reference execution entry point for structured programs."""

from __future__ import annotations

from typing import Mapping

from repro.flow.ast import FlowProgram

__all__ = ["run_program"]


def run_program(
    program: FlowProgram, env: Mapping[str, int], max_steps: int = 100_000
) -> dict[str, int]:
    """Execute a structured program; return the final variable state.

    A thin alias for :meth:`FlowProgram.execute`, mirroring
    :func:`repro.ir.interp.interpret` for the straight-line layer.
    """
    return program.execute(env, max_steps=max_steps)
