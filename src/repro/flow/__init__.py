"""EXTENSION: scheduling beyond a single basic block (paper section 7).

The paper's evaluation is restricted to straight-line basic blocks; its
conclusion lists "extension of the basic scheduling techniques to more
complex code structures (including arbitrary control flow)" as ongoing
work (the [OKee90] dissertation).  This package implements that
extension in the most conservative, clearly-correct form:

* a structured language layer -- ``if``/``else`` and ``while`` over the
  section 2 assignment language (:mod:`repro.flow.ast`,
  :mod:`repro.flow.parser`);
* lowering to a control-flow graph of basic blocks, each ending in a
  branch on a computed value (:mod:`repro.flow.cfg`);
* per-block barrier-MIMD scheduling using the unmodified section 4
  algorithms, with a machine-wide barrier at every block boundary --
  the barrier re-zeroes timing skew, so each block starts from the
  exact-synchrony state the intra-block analysis assumes
  (:mod:`repro.flow.schedule`);
* a reference interpreter and a multi-block machine executor that runs
  the per-block schedules along the dynamically taken path, verifying
  every dynamic producer/consumer instance
  (:mod:`repro.flow.interp`, :mod:`repro.flow.executor`).

Everything here is an extension beyond the 1990 paper and is marked as
such in DESIGN.md; the core reproduction does not depend on it.
"""

from repro.flow.ast import FlowProgram, IfStmt, WhileStmt
from repro.flow.parser import parse_program
from repro.flow.cfg import CFG, BasicBlockNode, build_cfg
from repro.flow.interp import run_program
from repro.flow.schedule import FlowSchedule, schedule_program
from repro.flow.executor import FlowTrace, execute_flow_schedule

__all__ = [
    "FlowProgram",
    "IfStmt",
    "WhileStmt",
    "parse_program",
    "CFG",
    "BasicBlockNode",
    "build_cfg",
    "run_program",
    "FlowSchedule",
    "schedule_program",
    "FlowTrace",
    "execute_flow_schedule",
]
