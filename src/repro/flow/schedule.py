"""Scheduling a whole control-flow graph on a barrier MIMD.

Strategy (the conservative inter-block discipline the paper's section 3
semantics make natural): every basic block is scheduled in isolation
with the unmodified section 4 algorithms, and consecutive blocks are
separated by a machine-wide barrier -- which is exactly the *initial*
barrier each block's machine program already begins with.  A barrier
re-zeroes the compiler's timing uncertainty, so each block starts from
the exact-synchrony state the intra-block analysis assumes, and the
total execution time along a dynamic path is simply the sum of the
blocks' makespans.

Block compilation differs from the single-block pipeline in two ways:

* every *final* store of a block is live (a successor block may read the
  variable from memory), which the standard DCE already respects;
* a :class:`~repro.flow.cfg.Branch` terminator's condition expression is
  materialized as tuples feeding a store to the reserved variable
  ``.branch`` -- the optimizer then keeps the condition computation
  alive, the scheduler treats it like any value, and the executor reads
  ``.branch`` to pick the successor.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.flow.cfg import CFG, Branch, build_cfg
from repro.flow.ast import FlowProgram
from repro.ir.codegen import CodeGenerator
from repro.ir.dag import InstructionDAG
from repro.ir.ops import DEFAULT_TIMING, TimingModel
from repro.ir.optimizer import optimize
from repro.ir.tuples import TupleProgram
from repro.core.scheduler import ScheduleResult, SchedulerConfig, schedule_dag
from repro.machine.program import MachineProgram
from repro.timing import Interval

__all__ = ["BRANCH_VAR", "FlowSchedule", "compile_cfg_block", "schedule_program"]

#: Reserved memory cell holding a block's branch-condition value.  The
#: mini language's identifiers cannot contain '.', so it never collides.
BRANCH_VAR = ".branch"


def compile_cfg_block(block, timing: TimingModel = DEFAULT_TIMING) -> TupleProgram:
    """Lower one CFG block (statements + condition) to optimized tuples."""
    gen = CodeGenerator()
    for stmt in block.statements:
        gen.lower_statement(stmt)
    if isinstance(block.terminator, Branch):
        from repro.ir.ast import Assign

        gen.lower_statement(Assign(BRANCH_VAR, block.terminator.cond))
    return optimize(gen.finish())


@dataclass(frozen=True)
class FlowSchedule:
    """Per-block schedules plus everything the executor needs."""

    cfg: CFG
    programs: dict[int, TupleProgram]  # optimized tuples per block
    results: dict[int, ScheduleResult]
    machine_programs: dict[int, MachineProgram]
    config: SchedulerConfig

    @property
    def n_blocks(self) -> int:
        return len(self.cfg.blocks)

    def total_edges(self) -> int:
        return sum(r.counts.total_edges for r in self.results.values())

    def total_barriers(self) -> int:
        """Inserted barriers plus one boundary barrier per non-entry block
        (each block's initial barrier doubles as the block-boundary
        synchronization)."""
        inserted = sum(r.counts.barriers_final for r in self.results.values())
        return inserted + max(0, self.n_blocks - 1)

    def static_path_bound(self, block_sequence) -> Interval:
        """``[min,max]`` completion bound along a concrete block path."""
        total = Interval(0, 0)
        for bid in block_sequence:
            total = total + self.results[bid].makespan
        return total

    def describe(self) -> str:
        lines = [
            f"{self.n_blocks} blocks on {self.config.n_pes} PEs "
            f"({self.config.machine.upper()}); "
            f"{self.total_edges()} intra-block syncs, "
            f"{self.total_barriers()} barriers incl. block boundaries"
        ]
        for bid in sorted(self.results):
            r = self.results[bid]
            lines.append(
                f"  B{bid}: {len(self.programs[bid])} instrs, "
                f"{r.counts.total_edges} syncs, "
                f"{r.counts.barriers_final} barriers, makespan {r.makespan}"
            )
        return "\n".join(lines)


def schedule_program(
    program: FlowProgram | CFG,
    config: SchedulerConfig | None = None,
    timing: TimingModel = DEFAULT_TIMING,
) -> FlowSchedule:
    """Compile and schedule every basic block of a structured program."""
    config = config or SchedulerConfig()
    cfg = program if isinstance(program, CFG) else build_cfg(program)

    programs: dict[int, TupleProgram] = {}
    results: dict[int, ScheduleResult] = {}
    machine_programs: dict[int, MachineProgram] = {}
    for bid, block in cfg.blocks.items():
        tuples = compile_cfg_block(block, timing)
        programs[bid] = tuples
        dag = InstructionDAG.from_program(tuples, timing)
        result = schedule_dag(dag, config.with_(seed=config.seed + bid))
        results[bid] = result
        machine_programs[bid] = MachineProgram.from_schedule(result.schedule)
    return FlowSchedule(
        cfg=cfg,
        programs=programs,
        results=results,
        machine_programs=machine_programs,
        config=config,
    )
