"""Executing a :class:`~repro.flow.schedule.FlowSchedule` end to end.

Timing comes from the barrier-machine simulators (one
:class:`~repro.machine.trace.ExecutionTrace` per dynamic block instance,
each verified against the block's producer/consumer edges); values come
from the reference tuple interpreter run against the live memory image.
Blocks chain through the machine-wide boundary barrier, so the total
execution time is the sum of the per-block makespans along the taken
path -- and always falls inside :meth:`FlowSchedule.static_path_bound`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.flow.cfg import Branch, ExitTerm, Jump
from repro.flow.schedule import BRANCH_VAR, FlowSchedule
from repro.ir.interp import interpret
from repro.machine.durations import DurationSampler, UniformSampler
from repro.machine.dbm import simulate_dbm
from repro.machine.sbm import simulate_sbm
from repro.machine.trace import ExecutionTrace

__all__ = ["FlowTrace", "execute_flow_schedule", "BlockLimitExceeded"]


class BlockLimitExceeded(RuntimeError):
    """The dynamic path exceeded ``max_blocks`` blocks (runaway loop)."""


@dataclass(frozen=True)
class FlowTrace:
    """Record of one dynamic execution of a structured program."""

    block_sequence: tuple[int, ...]
    block_traces: tuple[ExecutionTrace, ...]
    total_time: int
    memory: Mapping[str, int]

    @property
    def n_dynamic_blocks(self) -> int:
        return len(self.block_sequence)

    def final_state(self) -> dict[str, int]:
        """Final memory without the reserved branch cell."""
        return {k: v for k, v in self.memory.items() if k != BRANCH_VAR}

    def describe(self) -> str:
        path = " -> ".join(f"B{bid}" for bid in self.block_sequence)
        return (
            f"{self.n_dynamic_blocks} dynamic blocks, total time "
            f"{self.total_time}: {path}"
        )


def execute_flow_schedule(
    flow: FlowSchedule,
    env: Mapping[str, int],
    sampler: DurationSampler | None = None,
    rng: random.Random | int | None = None,
    max_blocks: int = 2_000,
    verify: bool = True,
) -> FlowTrace:
    """Run the scheduled program from ``env``; return the dynamic trace.

    ``env`` must bind every variable a taken block loads before assigning.
    Each dynamic block instance is simulated on the machine configured in
    the flow schedule (SBM or DBM) and, when ``verify`` is set, checked
    for producer/consumer soundness.
    """
    sampler = sampler or UniformSampler()
    if rng is None or isinstance(rng, int):
        rng = random.Random(rng)
    simulate = simulate_sbm if flow.config.machine == "sbm" else simulate_dbm

    memory: dict[str, int] = dict(env)
    sequence: list[int] = []
    traces: list[ExecutionTrace] = []
    total_time = 0
    current = flow.cfg.entry

    for _ in range(max_blocks):
        sequence.append(current)
        program = flow.machine_programs[current]
        trace = simulate(program, sampler, rng)
        if verify:
            trace.assert_sound(program.edges)
        traces.append(trace)
        total_time += trace.makespan

        # Values: interpret the block's tuples against live memory.
        memory.update(interpret(flow.programs[current], memory))

        term = flow.cfg.blocks[current].terminator
        if isinstance(term, ExitTerm):
            return FlowTrace(
                block_sequence=tuple(sequence),
                block_traces=tuple(traces),
                total_time=total_time,
                memory=memory,
            )
        if isinstance(term, Jump):
            current = term.target
        elif isinstance(term, Branch):
            current = (
                term.true_target if memory.get(BRANCH_VAR, 0) != 0 else term.false_target
            )
    raise BlockLimitExceeded(f"execution exceeded {max_blocks} blocks")
