"""Structured AST layer: assignments plus ``if``/``else`` and ``while``.

Statements are the section 2 :class:`~repro.ir.ast.Assign` plus two
structured constructs; conditions are ordinary expressions with C
semantics (nonzero is true).  A :class:`FlowProgram` is a statement
sequence with reference execution semantics (used to verify the whole
lowering/scheduling/execution stack end to end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, MutableMapping, Union

from repro.ir.ast import Assign, Expr

__all__ = ["Stmt", "IfStmt", "WhileStmt", "FlowProgram", "LoopLimitExceeded"]


class LoopLimitExceeded(RuntimeError):
    """Reference execution exceeded the iteration guard (likely an
    unintentionally unbounded random loop)."""


@dataclass(frozen=True)
class IfStmt:
    """``if (cond) { then } else { orelse }`` (else may be empty)."""

    cond: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...] = ()

    def __str__(self) -> str:
        out = f"if ({self.cond}) {{ ... {len(self.then_body)} stmts }}"
        if self.else_body:
            out += f" else {{ ... {len(self.else_body)} stmts }}"
        return out


@dataclass(frozen=True)
class WhileStmt:
    """``while (cond) { body }``."""

    cond: Expr
    body: tuple["Stmt", ...]

    def __str__(self) -> str:
        return f"while ({self.cond}) {{ ... {len(self.body)} stmts }}"


Stmt = Union[Assign, IfStmt, WhileStmt]


@dataclass(frozen=True)
class FlowProgram:
    """A structured program: the unit the flow scheduler consumes."""

    statements: tuple[Stmt, ...]

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    # -- analysis ----------------------------------------------------------

    def variables(self) -> tuple[str, ...]:
        """Every variable mentioned anywhere, in first-appearance order."""
        seen: dict[str, None] = {}

        def walk(stmts) -> None:
            for stmt in stmts:
                if isinstance(stmt, Assign):
                    for name in stmt.expr.variables():
                        seen.setdefault(name)
                    seen.setdefault(stmt.target)
                elif isinstance(stmt, IfStmt):
                    for name in stmt.cond.variables():
                        seen.setdefault(name)
                    walk(stmt.then_body)
                    walk(stmt.else_body)
                elif isinstance(stmt, WhileStmt):
                    for name in stmt.cond.variables():
                        seen.setdefault(name)
                    walk(stmt.body)

        walk(self.statements)
        return tuple(seen)

    def source(self) -> str:
        """Concrete syntax, re-parseable by :func:`repro.flow.parser.parse_program`."""
        lines: list[str] = []

        def emit(stmts, indent: int) -> None:
            pad = "    " * indent
            for stmt in stmts:
                if isinstance(stmt, Assign):
                    lines.append(f"{pad}{stmt}")
                elif isinstance(stmt, IfStmt):
                    lines.append(f"{pad}if ({stmt.cond}) {{")
                    emit(stmt.then_body, indent + 1)
                    if stmt.else_body:
                        lines.append(f"{pad}}} else {{")
                        emit(stmt.else_body, indent + 1)
                    lines.append(f"{pad}}}")
                elif isinstance(stmt, WhileStmt):
                    lines.append(f"{pad}while ({stmt.cond}) {{")
                    emit(stmt.body, indent + 1)
                    lines.append(f"{pad}}}")

        emit(self.statements, 0)
        return "\n".join(lines)

    # -- reference semantics --------------------------------------------------

    def execute(
        self, env: Mapping[str, int], max_steps: int = 100_000
    ) -> dict[str, int]:
        """Run the program; return the final value of every variable.

        ``max_steps`` bounds the total number of executed statements so
        that randomly generated ``while`` loops cannot hang the tests.
        """
        state: MutableMapping[str, int] = dict(env)
        budget = max_steps

        def run(stmts) -> None:
            nonlocal budget
            for stmt in stmts:
                budget -= 1
                if budget <= 0:
                    raise LoopLimitExceeded(f"exceeded {max_steps} statements")
                if isinstance(stmt, Assign):
                    state[stmt.target] = stmt.expr.evaluate(state)
                elif isinstance(stmt, IfStmt):
                    if stmt.cond.evaluate(state) != 0:
                        run(stmt.then_body)
                    else:
                        run(stmt.else_body)
                elif isinstance(stmt, WhileStmt):
                    while stmt.cond.evaluate(state) != 0:
                        budget -= 1
                        if budget <= 0:
                            raise LoopLimitExceeded(
                                f"exceeded {max_steps} statements"
                            )
                        run(stmt.body)

        run(self.statements)
        return dict(state)
