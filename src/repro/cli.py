"""Command-line interface: ``python -m repro`` / ``repro-sbm``.

Subcommands mirror the pipeline stages:

``generate``    emit a random synthetic basic block (mini-language source)
``compile``     compile source (file or stdin) and print tuples + DAG
``schedule``    schedule source onto a barrier MIMD; print streams,
                embedding, barrier dag, sync fractions, quality report
``simulate``    schedule then execute under a duration sampler; print the
                trace and a Gantt chart
``explain``     schedule, then report the provenance of every decision:
                node->PE assignment rules, the producer/consumer edge
                whose failed timing proof forced each barrier, and every
                merge accept/reject with its reason
``flow``        schedule a structured program (if/while extension) and
                execute it dynamically with verified timing
``faults``      fault-injection campaign: races, blame, ε-hardening
``experiment``  run one of the paper's experiments (fig14..fig18,
                table1, ranges, merging, ablations, robustness, ...)
``perf``        run the standard perf workload and emit a BENCH_*.json
                trajectory record (see docs/performance.md); appends an
                entry to the perf-trajectory series by default
``diff``        compare two run records (``--record FILE``) and localize
                the first divergence: assignment -> ordering -> barrier
                set -> fire times -> metrics, with provenance-backed
                explanations of the diverging decision
``watch``       perf-trajectory watchdog: judge the latest ``perf``
                entry against the prior series; exit 1 on a flagged
                regression (the CI perf-smoke gate)

Examples::

    repro-sbm generate --statements 20 --variables 8 --seed 7
    repro-sbm generate -s 30 | repro-sbm schedule --pes 8
    repro-sbm simulate --pes 4 --runs 3 examples/block.src
    repro-sbm simulate --trace out.json examples/block.src   # Perfetto
    repro-sbm simulate --timeline machine.json examples/block.src
    repro-sbm explain --pes 8 --runtime examples/block.src
    repro-sbm schedule --merge on --record a.json examples/block.src
    repro-sbm schedule --merge off --record b.json examples/block.src
    repro-sbm diff a.json b.json
    repro-sbm watch --output watch_report.md
    repro-sbm faults --epsilon 0.25 --runs 50 --seed 7
    repro-sbm experiment fig15 --count 30 --jobs 4
    repro-sbm perf --count 25 --jobs 0 --output BENCH_perf.json
    repro-sbm perf --live --profile perf.folded   # status line + flamegraph
    repro-sbm watch --explain                     # name the regressed series

Global (pre-subcommand) flags: ``-v/--verbose`` raises diagnostic
verbosity (repeat for debug), ``-q/--quiet`` shows errors only.
``--trace FILE`` on ``schedule``/``simulate``/``explain``/``perf``
writes a span trace (Chrome trace JSON, or JSONL for a ``.jsonl``
suffix) of the run; ``--profile FILE`` on the same subcommands plus
``experiment`` writes folded flamegraph stacks and collects the
per-kernel/memory/GC resource profile; ``perf --live [FILE]`` streams
progress heartbeats (TTY status line, or JSONL); ``watch --explain``
attributes a flagged regression to the stages/kernels that slowed
down.  See docs/observability.md.

Bad inputs (missing files, malformed source, out-of-range parameters)
exit with status 2 and a one-line diagnostic, never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager, nullcontext

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments import (
    ablation_lookahead,
    barrier_cost_experiment,
    flow_overhead_experiment,
    hybrid_experiment,
    kernel_suite_experiment,
    robustness_experiment,
    sync_elimination_experiment,
    ablation_ordering,
    ablation_round_robin,
    ablation_timing_variation,
    figure14_scatter,
    figure15_statements,
    figure16_variables,
    figure17_processors,
    figure18_vliw,
    merging_experiment,
    optimal_vs_conservative,
    overall_ranges,
    secondary_effect,
    table1_instruction_mix,
)
from repro.ir import compile_source, generate_tuples, optimize, parse_block
from repro.ir.dag import InstructionDAG
from repro.machine.durations import BimodalSampler, MaxSampler, MinSampler, UniformSampler
from repro.machine.program import MachineProgram
from repro.machine.dbm import simulate_dbm
from repro.machine.sbm import simulate_sbm
from repro.obs.logging import configure as _configure_logging, get_logger
from repro.perf.report import DEFAULT_TRAJECTORY
from repro.perf.timers import stage
from repro.synth.generator import GeneratorConfig, generate_block
from repro.viz import render_barrier_dag, render_embedding, render_gantt

__all__ = ["main"]

_LOG = get_logger("cli")

_EXPERIMENTS = {
    "table1": lambda args: table1_instruction_mix(),
    "fig14": lambda args: figure14_scatter(count=args.count),
    "fig15": lambda args: figure15_statements(count=args.count),
    "fig16": lambda args: figure16_variables(count=args.count),
    "fig17": lambda args: figure17_processors(count=args.count),
    "fig18": lambda args: figure18_vliw(count=args.count),
    "ranges": lambda args: overall_ranges(count_per_point=max(4, args.count // 4)),
    "merging": lambda args: merging_experiment(count=args.count),
    "roundrobin": lambda args: ablation_round_robin(count=args.count),
    "ordering": lambda args: ablation_ordering(count=args.count),
    "lookahead": lambda args: ablation_lookahead(count=args.count),
    "timing": lambda args: ablation_timing_variation(count=args.count),
    "secondary": lambda args: secondary_effect(count=args.count),
    "optimal": lambda args: optimal_vs_conservative(count=args.count),
    "barriercost": lambda args: barrier_cost_experiment(count=args.count),
    "flowoverhead": lambda args: flow_overhead_experiment(count=args.count),
    "kernels": lambda args: kernel_suite_experiment(synthetic_count=args.count),
    "syncelim": lambda args: sync_elimination_experiment(count=args.count),
    "robustness": lambda args: robustness_experiment(count=max(4, args.count // 4)),
    "hybrid": lambda args: hybrid_experiment(
        count=max(4, args.count // 4), jobs=None
    ),
}

_SAMPLERS = {
    "uniform": UniformSampler,
    "min": MinSampler,
    "max": MaxSampler,
    "bimodal": BimodalSampler,
}


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sbm",
        description="Static scheduling for barrier MIMD architectures "
        "(Zaafrani, Dietz, O'Keefe 1990) -- reproduction toolkit",
    )
    # Global verbosity flags live on the top-level parser (before the
    # subcommand).  The quiet flag uses its own dest: several subcommands
    # define a -q of their own ("fractions only") and must not clobber it.
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more diagnostics on stderr (repeat for debug)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        dest="log_quiet",
        action="store_true",
        help="errors only on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit a random synthetic basic block")
    gen.add_argument("--statements", "-s", type=int, default=20)
    gen.add_argument("--variables", "-v", type=int, default=8)
    gen.add_argument("--constants", "-c", type=int, default=4)
    gen.add_argument("--seed", type=int, default=0)

    comp = sub.add_parser("compile", help="compile source to tuples and a DAG")
    comp.add_argument("source", nargs="?", help="source file (default: stdin)")
    comp.add_argument("--no-optimize", action="store_true")

    sched = sub.add_parser("schedule", help="schedule a basic block")
    _add_schedule_args(sched)

    sim = sub.add_parser("simulate", help="schedule and execute a basic block")
    _add_schedule_args(sim)
    sim.add_argument("--runs", type=int, default=1)
    sim.add_argument("--sampler", choices=sorted(_SAMPLERS), default="uniform")
    sim.add_argument("--sim-seed", type=int, default=0)
    sim.add_argument(
        "--timeline",
        metavar="FILE",
        default=None,
        help="write run 0 as a per-PE machine timeline with barrier flow "
        "events (Perfetto-loadable Chrome trace JSON)",
    )

    expl = sub.add_parser(
        "explain",
        help="schedule a block and report the provenance of every decision",
    )
    _add_schedule_args(expl)
    expl.add_argument(
        "--json",
        action="store_true",
        help="emit the report as machine-readable JSON instead of text",
    )
    expl.add_argument(
        "--runtime",
        action="store_true",
        help="also simulate one run and cross-link the executed critical "
        "path to the decisions that placed its barriers",
    )

    flow = sub.add_parser(
        "flow", help="schedule and run a structured (if/while) program"
    )
    flow.add_argument("source", nargs="?", help="source file (default: stdin)")
    flow.add_argument("--pes", "-p", type=_positive_int, default=4)
    flow.add_argument("--machine", choices=("sbm", "dbm"), default="sbm")
    flow.add_argument("--seed", type=int, default=0)
    flow.add_argument(
        "--input",
        "-i",
        action="append",
        default=[],
        metavar="VAR=INT",
        help="initial variable binding (repeatable)",
    )
    flow.add_argument("--runs", type=int, default=1)

    flt = sub.add_parser(
        "faults",
        help="fault-injection campaign: detect races, blame edges, ε-harden",
    )
    flt.add_argument(
        "source",
        nargs="?",
        help="source file (default: stdin if piped, else a generated block)",
    )
    flt.add_argument("--pes", "-p", type=_positive_int, default=4)
    flt.add_argument("--machine", choices=("sbm", "dbm"), default="sbm")
    flt.add_argument(
        "--insertion", choices=("conservative", "optimal"), default="conservative"
    )
    flt.add_argument("--seed", type=int, default=0)
    flt.add_argument("--no-optimize", action="store_true")
    flt.add_argument(
        "--statements",
        "-s",
        type=_positive_int,
        default=30,
        help="size of the auto-generated block when no source is given",
    )
    flt.add_argument(
        "--epsilon",
        type=float,
        default=0.25,
        help="multiplicative latency overrun budget (fraction of max latency)",
    )
    flt.add_argument("--runs", type=_positive_int, default=50)
    flt.add_argument(
        "--p-overrun", type=float, default=1.0, help="per-instruction overrun probability"
    )
    flt.add_argument("--spike-prob", type=float, default=0.0)
    flt.add_argument(
        "--spike", type=_nonnegative_int, default=0, help="max additive interrupt spike"
    )
    flt.add_argument(
        "--stragglers",
        default="",
        metavar="PE[,PE...]",
        help="processors whose overrun budget is multiplied by --straggler-factor",
    )
    flt.add_argument("--straggler-factor", type=float, default=2.0)
    flt.add_argument(
        "--jitter", type=_nonnegative_int, default=0, help="max barrier-release jitter"
    )
    flt.add_argument(
        "--spike-window",
        action="append",
        default=[],
        metavar="LO:HI",
        help="restrict interrupt spikes to the machine-time window "
        "[LO, HI); repeatable, windows must not overlap",
    )
    flt.add_argument(
        "--no-harden", action="store_true", help="skip the ε-hardening pass"
    )
    flt.add_argument(
        "--no-directed", action="store_true", help="random runs only, no witnesses"
    )
    flt.add_argument(
        "--mode",
        choices=("static", "hybrid"),
        default="static",
        help="hybrid also campaigns the schedule with fragile timing "
        "edges demoted to runtime data guards",
    )
    flt.add_argument(
        "--hybrid-epsilon",
        type=float,
        default=None,
        metavar="EPS",
        help="fragility budget for --mode hybrid (default: the fault "
        "plan's own worst-case stretch)",
    )
    _add_perf_args(flt)

    dot = sub.add_parser(
        "dot", help="emit Graphviz DOT for a block's DAG and barrier dag"
    )
    dot.add_argument("source", nargs="?", help="source file (default: stdin)")
    dot.add_argument("--pes", "-p", type=_positive_int, default=8)
    dot.add_argument("--seed", type=int, default=0)
    dot.add_argument(
        "--what",
        choices=("dag", "barriers", "both"),
        default="both",
        help="which graph(s) to emit",
    )

    arch = sub.add_parser(
        "archive", help="schedule a corpus and write per-benchmark JSONL records"
    )
    arch.add_argument("output", help="JSONL file to write")
    arch.add_argument("--statements", "-s", type=int, default=60)
    arch.add_argument("--variables", "-v", type=int, default=10)
    arch.add_argument("--pes", "-p", type=_positive_int, default=8)
    arch.add_argument("--count", type=int, default=100)
    arch.add_argument("--seed", type=int, default=0)

    exp = sub.add_parser("experiment", help="run one of the paper's experiments")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--count", type=int, default=50, help="benchmarks per point")
    _add_perf_args(exp)
    exp.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every point instead of reusing the on-disk sweep cache",
    )
    _add_profile_arg(exp)

    perf = sub.add_parser(
        "perf",
        help="run the standard perf workload; emit a BENCH_*.json record",
    )
    perf.add_argument(
        "--count",
        type=_positive_int,
        default=None,
        help="benchmarks per sweep point (default: the preset's standard "
        "count, e.g. 25 for default, 100 for paper3500)",
    )
    perf.add_argument(
        "--preset",
        choices=("default", "paper3500", "scale1024"),
        default="default",
        help="workload preset: 'paper3500' runs the paper-scale 35-point "
        "evaluation (3500 benchmarks at the default count), 'scale1024' "
        "the 1024-PE stress sweep",
    )
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument(
        "--output",
        "-o",
        default="BENCH_perf.json",
        help="report path ('-' prints the JSON to stdout only)",
    )
    perf.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a span trace of the run (Chrome trace JSON; "
        "'.jsonl' suffix selects JSONL)",
    )
    _add_profile_arg(perf)
    perf.add_argument(
        "--live",
        metavar="FILE",
        nargs="?",
        const="",
        default=None,
        help="stream progress heartbeats during the run: with no FILE, "
        "a status line on stderr (JSONL heartbeats when stderr is not "
        "a terminal); with FILE, machine-readable JSONL to that file",
    )
    perf.add_argument(
        "--trajectory",
        metavar="FILE",
        default=None,
        help="trajectory series to append the run to "
        f"(default: {DEFAULT_TRAJECTORY})",
    )
    perf.add_argument(
        "--no-trajectory",
        action="store_true",
        help="do not append this run to the trajectory series",
    )
    perf.add_argument(
        "--label",
        default="",
        help="label stored in the appended trajectory entry",
    )
    _add_perf_args(perf)

    dif = sub.add_parser(
        "diff",
        help="compare two run records and localize the first divergence",
    )
    dif.add_argument("record_a", help="run record written by --record")
    dif.add_argument("record_b", help="run record written by --record")
    dif.add_argument(
        "--json",
        action="store_true",
        help="emit the diff as machine-readable JSON instead of text",
    )

    wat = sub.add_parser(
        "watch",
        help="perf-trajectory watchdog: flag regressions across the series",
    )
    wat.add_argument(
        "--trajectory",
        metavar="FILE",
        default=str(DEFAULT_TRAJECTORY),
        help="trajectory series to judge (JSONL, one entry per perf run)",
    )
    wat.add_argument(
        "--output",
        "-o",
        metavar="FILE",
        default=None,
        help="also write the report as markdown (the CI artifact)",
    )
    wat.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="latest wall/stage time may be at most FACTOR x the median "
        "of prior entries (plus an absolute noise floor)",
    )
    wat.add_argument(
        "--json",
        action="store_true",
        help="emit the verdicts as machine-readable JSON instead of text",
    )
    wat.add_argument(
        "--explain",
        action="store_true",
        help="diff the latest entry's stage/kernel profiles against the "
        "prior same-workload runs and name the top regressed series",
    )

    return parser


def _add_profile_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help="write folded flamegraph stacks of the run (speedscope/"
        "flamegraph.pl input) and collect per-kernel/memory/GC "
        "accounting",
    )


def _add_perf_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        "-j",
        type=_nonnegative_int,
        default=None,
        help="worker processes for corpus points (0 = all cores; "
        "default: the REPRO_JOBS environment variable, else serial)",
    )
    p.add_argument(
        "--backend",
        choices=("python", "numpy", "auto"),
        default=None,
        help="scheduling-kernel backend (default: the REPRO_BACKEND "
        "environment variable, else auto)",
    )
    p.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cases per batched-pipeline chunk on the serial path "
        "(1 disables batching; default: the REPRO_BATCH environment "
        "variable, else 100)",
    )


def _add_schedule_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("source", nargs="?", help="source file (default: stdin)")
    p.add_argument("--pes", "-p", type=_positive_int, default=8)
    p.add_argument("--machine", choices=("sbm", "dbm"), default="sbm")
    p.add_argument("--insertion", choices=("conservative", "optimal"), default="conservative")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-optimize", action="store_true")
    p.add_argument(
        "--mode",
        choices=("static", "hybrid"),
        default="static",
        help="hybrid demotes fragile timing edges (slack margin below "
        "--hybrid-epsilon) to runtime data guards instead of trusting "
        "the static proof",
    )
    p.add_argument(
        "--hybrid-epsilon",
        type=float,
        default=0.25,
        metavar="EPS",
        help="fragility budget for --mode hybrid: timing edges whose "
        "relative slack margin is below EPS are guarded",
    )
    p.add_argument(
        "--merge",
        choices=("auto", "on", "off"),
        default="auto",
        help="barrier merging (auto = the machine's default: on for SBM, "
        "off for DBM)",
    )
    p.add_argument("--quiet", "-q", action="store_true", help="fractions only")
    p.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a span trace of the run (Chrome trace JSON; "
        "'.jsonl' suffix selects JSONL)",
    )
    _add_profile_arg(p)
    p.add_argument(
        "--record",
        metavar="FILE",
        default=None,
        help="write a versioned run record (JSON) for `repro-sbm diff`",
    )
    p.add_argument(
        "--label",
        default="",
        help="label stored in the run record (default: the source path)",
    )


def _read_source(path: str | None) -> str:
    if path is None or path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_generate(args) -> int:
    config = GeneratorConfig(
        n_statements=args.statements,
        n_variables=args.variables,
        n_constants=args.constants,
    )
    block = generate_block(config, args.seed)
    print(block.source())
    return 0


def _cmd_compile(args) -> int:
    block = parse_block(_read_source(args.source))
    program = generate_tuples(block)
    print("== raw tuples ==")
    print(program.render())
    if not args.no_optimize:
        program = optimize(program)
        print("\n== optimized tuples ==")
        print(program.render())
    dag = InstructionDAG.from_program(program)
    print("\n== instruction DAG ==")
    print(dag.render())
    print(
        f"\n{len(program)} instructions, {dag.implied_synchronizations} implied "
        f"synchronizations, critical path {dag.critical_path()}"
    )
    return 0


def _schedule_from_args(args):
    # Stage wraps so a --trace of schedule/simulate covers the full
    # pipeline, not just the stages schedule_dag opens internally.
    with stage("generate"):
        dag = compile_source(
            _read_source(args.source), run_optimizer=not args.no_optimize
        )
    config = SchedulerConfig(
        n_pes=args.pes,
        machine=args.machine,
        insertion=args.insertion,
        seed=args.seed,
        merge_barriers={"auto": None, "on": True, "off": False}[args.merge],
        mode=args.mode,
        hybrid_epsilon=args.hybrid_epsilon if args.mode == "hybrid" else 0.0,
    )
    with stage("schedule"):
        result = schedule_dag(dag, config)
    return dag, result


def _record_label(args) -> str:
    return args.label or args.source or "stdin"


def _provenance_scope(args):
    """A provenance recorder when ``--record`` asks for one, else None.

    Records carry the scheduler's decision provenance so ``diff`` can
    name the diverging decision; without ``--record`` the scheduling
    runs unobserved, exactly as before.
    """
    if getattr(args, "record", None):
        from repro.obs.provenance import collect_provenance

        return collect_provenance()
    return nullcontext(None)


def _write_record(args, result, recorder, trace=None, analysis=None) -> None:
    from repro.obs.diff import run_record, write_run_record

    record = run_record(
        result,
        provenance=recorder,
        trace=trace,
        analysis=analysis,
        label=_record_label(args),
    )
    write_run_record(record, args.record)
    print(f"wrote run record {args.record}")


def _cmd_schedule(args) -> int:
    from repro.analysis import analyze_schedule

    with _provenance_scope(args) as recorder:
        _, result = _schedule_from_args(args)
    if not args.quiet:
        print("== barrier embedding ==")
        print(render_embedding(result.schedule))
        print("\n== barrier dag ==")
        print(render_barrier_dag(result.schedule))
        print()
    print(result.describe())
    print(analyze_schedule(result).render())
    if result.hybrid is not None:
        print()
        print("== hybrid demotion plan ==")
        print(result.hybrid.render())
    if args.record:
        _write_record(args, result, recorder)
    return 0


def _cmd_flow(args) -> int:
    from repro.flow import execute_flow_schedule, parse_program, schedule_program

    program = parse_program(_read_source(args.source))
    env: dict[str, int] = {}
    for binding in args.input:
        name, _, value = binding.partition("=")
        if not name or not value.lstrip("-").isdigit():
            raise SystemExit(f"bad --input {binding!r}; expected VAR=INT")
        env[name.strip()] = int(value)
    config = SchedulerConfig(n_pes=args.pes, machine=args.machine, seed=args.seed)
    flow = schedule_program(program, config)
    print(flow.cfg.render())
    print()
    print(flow.describe())
    for run in range(args.runs):
        trace = execute_flow_schedule(flow, env, rng=args.seed + run)
        bound = flow.static_path_bound(trace.block_sequence)
        print(f"\nrun {run}: {trace.describe()}")
        print(f"  path bound {bound}; final state:")
        for name, value in sorted(trace.final_state().items()):
            print(f"    {name} = {value}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.obs.runtime import analyze_trace

    with _provenance_scope(args) as recorder:
        _, result = _schedule_from_args(args)
    guards = result.hybrid.guards if result.hybrid is not None else None
    program = MachineProgram.from_schedule(result.schedule, guards=guards)
    sim = simulate_sbm if args.machine == "sbm" else simulate_dbm
    sampler = _SAMPLERS[args.sampler]()
    first: tuple | None = None  # (trace, analysis) of run 0
    for run in range(args.runs):
        trace = sim(program, sampler, rng=args.sim_seed + run)
        trace.assert_sound(program.edges)
        analysis = analyze_trace(program, trace)
        if first is None:
            first = (trace, analysis)
        if not args.quiet:
            print(f"== run {run} ==")
            print(render_gantt(program, trace))
            print(analysis.render())
            print()
        else:
            print(trace.describe())
    print(result.describe())
    print(f"static makespan bound {result.makespan}")
    if result.hybrid is not None:
        print(result.hybrid.describe())
        if first is not None:
            t = first[0]
            print(
                f"run 0 data-guard waits: {len(t.guard_waits)}"
                f" ({t.guard_saves} recovered)"
            )
    if args.timeline and first is not None:
        from repro.obs.runtime_export import write_machine_trace

        write_machine_trace(program, first[0], args.timeline, first[1])
        print(f"wrote machine timeline {args.timeline}")
    if args.record:
        trace, analysis = first if first is not None else (None, None)
        _write_record(args, result, recorder, trace=trace, analysis=analysis)
    return 0


def _cmd_explain(args) -> int:
    from repro.obs.explain import explain_result
    from repro.obs.provenance import collect_provenance
    from repro.obs.spans import DISABLED

    if DISABLED:
        _LOG.warning(
            "REPRO_OBS_DISABLE is set; no decisions will be recorded"
        )
    with collect_provenance() as recorder:
        _, result = _schedule_from_args(args)
    report = explain_result(result, recorder)
    analysis = None
    if args.runtime:
        from repro.obs.runtime import analyze_trace

        program = MachineProgram.from_schedule(result.schedule)
        sim = simulate_sbm if args.machine == "sbm" else simulate_dbm
        trace = sim(program, rng=args.seed)
        trace.assert_sound(program.edges)
        analysis = analyze_trace(program, trace)
    if args.json:
        import json

        data = report.as_dict()
        if analysis is not None:
            data["runtime"] = analysis.as_dict()
        print(json.dumps(data, indent=1, sort_keys=True))
    else:
        print(report.render())
        if analysis is not None:
            print()
            print(analysis.render())
            for line in _critical_decisions(analysis, recorder):
                print(line)
    if args.record:
        _write_record(args, result, recorder, analysis=analysis)
    return 0


def _critical_decisions(analysis, recorder) -> list[str]:
    """Cross-link executed-critical-path barriers to their provenance."""
    lines = []
    for bid in analysis.critical_barriers():
        decision = recorder.barrier_decision(bid)
        if decision is not None:
            lines.append(
                f"  critical b{bid}: forced by {decision.producer} -> "
                f"{decision.consumer} (slack {decision.slack})"
            )
            continue
        absorbed = [
            m
            for m in recorder.merges
            if m.accepted and m.survivor == bid
        ]
        if absorbed:
            merged = ", ".join(f"b{m.other}" for m in absorbed)
            lines.append(f"  critical b{bid}: merged barrier (absorbed {merged})")
        else:
            lines.append(f"  critical b{bid}: no insertion decision (initial)")
    return lines


def _faults_source(args) -> str:
    """Source for the ``faults`` command: file, piped stdin, or generated."""
    if args.source is not None:
        return _read_source(args.source)
    try:
        if not sys.stdin.isatty():
            text = sys.stdin.read()
            if text.strip():
                return text
    except OSError:  # stdin closed or unreadable: fall back to generation
        pass
    config = GeneratorConfig(n_statements=args.statements)
    return generate_block(config, args.seed).source()


def _parse_stragglers(spec: str, n_pes: int) -> frozenset[int]:
    if not spec.strip():
        return frozenset()
    pes = set()
    for part in spec.split(","):
        part = part.strip()
        if not part.isdigit():
            raise ValueError(f"bad --stragglers entry {part!r}; expected a PE index")
        pe = int(part)
        if pe >= n_pes:
            raise ValueError(f"--stragglers PE {pe} out of range for {n_pes} PEs")
        pes.add(pe)
    return frozenset(pes)


def _parse_spike_windows(specs: list[str]) -> tuple[tuple[int, int], ...]:
    windows = []
    for spec in specs:
        lo, sep, hi = spec.partition(":")
        lo, hi = lo.strip(), hi.strip()
        if not sep or not lo.isdigit() or not hi.isdigit():
            raise ValueError(
                f"bad --spike-window {spec!r}; expected LO:HI "
                "(non-negative integers, LO < HI)"
            )
        windows.append((int(lo), int(hi)))
    return tuple(windows)


def _cmd_faults(args) -> int:
    from repro.faults import (
        FaultPlan,
        harden_schedule,
        robustness_margin,
        run_campaign,
    )

    dag = compile_source(_faults_source(args), run_optimizer=not args.no_optimize)
    config = SchedulerConfig(
        n_pes=args.pes,
        machine=args.machine,
        insertion=args.insertion,
        seed=args.seed,
    )
    result = schedule_dag(dag, config)
    plan = FaultPlan(
        epsilon=args.epsilon,
        p_overrun=args.p_overrun,
        spike_prob=args.spike_prob,
        spike_magnitude=args.spike,
        spike_windows=_parse_spike_windows(args.spike_window),
        straggler_pes=_parse_stragglers(args.stragglers, args.pes),
        straggler_factor=args.straggler_factor,
        barrier_jitter=args.jitter,
    )

    print(result.describe())
    print()
    print("== static robustness margin ==")
    print(robustness_margin(result.schedule, args.insertion).render())
    print()
    print("== fault campaign (as scheduled) ==")
    report = run_campaign(
        result.schedule,
        args.machine,
        plan,
        runs=args.runs,
        seed=args.seed,
        directed=not args.no_directed,
        mode=args.insertion,
        jobs=args.jobs,
    )
    print(report.render())

    if args.mode == "hybrid":
        from repro.hybrid import hybridize_schedule

        budget = (
            args.hybrid_epsilon
            if args.hybrid_epsilon is not None
            else plan.worst_stretch
        )
        hyb = hybridize_schedule(result.schedule, budget, args.insertion)
        print()
        print("== hybrid demotion plan ==")
        print(hyb.render())
        print()
        print("== fault campaign (hybrid) ==")
        hybrid_report = run_campaign(
            result.schedule,
            args.machine,
            plan,
            runs=args.runs,
            seed=args.seed,
            directed=not args.no_directed,
            mode=args.insertion,
            hybrid=hyb,
            jobs=args.jobs,
        )
        print(hybrid_report.render())

    if args.no_harden or plan.is_null:
        return 0

    print()
    print("== epsilon-hardening ==")
    hardened = harden_schedule(
        result.schedule,
        plan=plan,
        mode=args.insertion,
        merge=args.machine == "sbm",
    )
    print(hardened.render())
    print()
    print("== fault campaign (hardened) ==")
    hardened_report = run_campaign(
        hardened.schedule,
        args.machine,
        plan,
        runs=args.runs,
        seed=args.seed,
        directed=not args.no_directed,
        mode=args.insertion,
        jobs=args.jobs,
    )
    print(hardened_report.render())
    if not hardened_report.race_free and not plan.barrier_jitter:
        # Duration-only plans are provably covered by hardening; a race
        # here is a bug in the toolchain, not in the user's input.
        _LOG.error("hardening failed to eliminate races -- this is a bug")
        return 1
    return 0


def _cmd_dot(args) -> int:
    from repro.viz.dot import barrier_dag_to_dot, instruction_dag_to_dot

    dag = compile_source(_read_source(args.source))
    if args.what in ("dag", "both"):
        print(instruction_dag_to_dot(dag))
    if args.what in ("barriers", "both"):
        result = schedule_dag(dag, SchedulerConfig(n_pes=args.pes, seed=args.seed))
        print(barrier_dag_to_dot(result.schedule))
    return 0


def _cmd_archive(args) -> int:
    from repro.experiments.archive import archive_corpus, stats_from_archive
    from repro.experiments.sweeps import ExperimentPoint

    point = ExperimentPoint(
        generator=GeneratorConfig(
            n_statements=args.statements, n_variables=args.variables
        ),
        scheduler=SchedulerConfig(n_pes=args.pes),
        count=args.count,
        master_seed=args.seed,
    )
    written = archive_corpus(point, args.output)
    print(f"wrote {written} records to {args.output}")
    print(stats_from_archive(args.output).render())
    return 0


@contextmanager
def _perf_env(args, cache: bool | None = None):
    """Scope the REPRO_JOBS / REPRO_BACKEND / REPRO_BATCH / REPRO_CACHE
    knobs to one command.

    The experiment functions reach run_point/sweep several layers down;
    the jobs/cache choices travel via the environment variables those
    helpers already resolve.  Scoping (rather than plain assignment)
    keeps in-process callers of :func:`main` -- the test suite -- from
    leaking configuration between invocations.
    """
    overrides: dict[str, str] = {}
    if args.jobs is not None:
        overrides["REPRO_JOBS"] = str(args.jobs)
    if getattr(args, "backend", None) is not None:
        overrides["REPRO_BACKEND"] = args.backend
    if getattr(args, "batch_size", None) is not None:
        overrides["REPRO_BATCH"] = str(args.batch_size)
    if cache is not None:
        overrides["REPRO_CACHE"] = "1" if cache else "0"
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _cmd_experiment(args) -> int:
    with _perf_env(args, cache=not args.no_cache):
        result = _EXPERIMENTS[args.name](args)
    print(result.render())
    return 0


@contextmanager
def _live_progress(args):
    """Scope the ``perf --live`` heartbeat stream around a run.

    Bare ``--live`` renders a TTY status line on stderr (falling back
    to JSONL heartbeats with a warning when stderr is not a terminal);
    ``--live FILE`` streams machine-readable JSONL to the file.  Bad
    combinations raise for :func:`main`'s exit-2 diagnostic."""
    live = getattr(args, "live", None)
    if live is None:
        yield
        return
    from repro.obs.progress import (
        JSONLSink,
        ProgressMeter,
        TTYStatusSink,
        collect_progress,
    )

    if live == "":
        if args.output == "-":
            raise ValueError(
                "--live without FILE draws a status line and conflicts "
                "with --output - (JSON on stdout); give --live a FILE "
                "for a machine-readable stream"
            )
        if sys.stderr.isatty():
            sink = TTYStatusSink(sys.stderr)
        else:
            _LOG.warning(
                "--live: stderr is not a terminal; falling back to "
                "JSONL heartbeats"
            )
            sink = JSONLSink(sys.stderr)
    else:
        _preflight_output(live, "--live stream")
        sink = JSONLSink(
            open(live, "w", encoding="utf-8"), owns_stream=True
        )
    meter = ProgressMeter(sink.emit)
    try:
        with collect_progress(meter):
            yield
        meter.finish()
    finally:
        sink.close()


def _cmd_perf(args) -> int:
    from repro.perf.report import run_perf_report

    with _perf_env(args), _live_progress(args):
        report = run_perf_report(
            count=args.count, master_seed=args.seed, preset=args.preset
        )
    print(report.render())
    if args.output and args.output != "-":
        path = report.write(args.output)
        print(f"wrote {path}")
    else:
        import json

        print(json.dumps(report.data, indent=1, sort_keys=True))
    if not args.no_trajectory:
        from repro.perf.report import append_trajectory

        path = append_trajectory(
            report.data,
            args.trajectory or DEFAULT_TRAJECTORY,
            label=args.label,
        )
        print(f"appended trajectory entry to {path}")
    return 0


def _cmd_diff(args) -> int:
    from repro.obs.diff import diff_runs, load_run_record

    diff = diff_runs(
        load_run_record(args.record_a), load_run_record(args.record_b)
    )
    if args.json:
        import json

        print(json.dumps(diff.as_dict(), indent=1, sort_keys=True))
    else:
        print(diff.render())
    return 0 if diff.identical else 1


def _cmd_watch(args) -> int:
    from repro.obs.watch import (
        WatchConfig,
        explain_regression,
        load_trajectory,
        watch_trajectory,
    )

    entries = load_trajectory(args.trajectory)
    report = watch_trajectory(entries, WatchConfig(factor=args.factor))
    explain = explain_regression(entries) if args.explain else None
    if args.json:
        import json

        data = report.as_dict()
        if explain is not None:
            data["explain"] = explain.as_dict()
        print(json.dumps(data, indent=1, sort_keys=True))
    else:
        print(report.render())
        if explain is not None:
            print(explain.render())
    if args.output:
        markdown = report.render_markdown()
        if explain is not None:
            markdown = markdown.rstrip("\n") + "\n\n" + explain.render_markdown()
        with open(args.output, "w", encoding="utf-8") as fp:
            fp.write(markdown)
        print(f"wrote {args.output}")
    return 0 if report.ok else 1


def _preflight_output(path: str, what: str) -> None:
    """Fail *before* the run when an output path cannot be written.

    Without this, a misspelled ``--trace``/``--profile`` directory
    surfaces only after minutes of corpus work.  The check raises
    ``OSError`` for :func:`main`'s one-line exit-2 diagnostic path.
    """
    parent = os.path.dirname(os.path.abspath(path)) or "."
    if not os.path.isdir(parent):
        raise OSError(
            f"cannot write {what} {path!r}: {parent!r} is not a directory"
        )
    if os.path.isdir(path):
        raise OSError(f"cannot write {what} {path!r}: is a directory")
    probe = path if os.path.exists(path) else parent
    if not os.access(probe, os.W_OK):
        raise OSError(f"cannot write {what} {path!r}: permission denied")


def _run_observed(args, run) -> int:
    """Run a handler under the observation outputs its flags request.

    ``--trace FILE`` writes a span trace; ``--profile FILE`` writes
    folded flamegraph stacks and collects the per-kernel/memory/GC
    resource profile.  Both share ONE tracer -- collectors nest
    innermost-wins, so stacking a second ``collect_trace`` would starve
    the outer one.  Output paths are preflighted (bad paths exit 2
    before any work); the files are written only on success, a failing
    run keeps the plain error path."""
    trace_path = getattr(args, "trace", None)
    profile_path = getattr(args, "profile", None)
    if not trace_path and not profile_path:
        return run(args)
    from repro.obs.prof import collect_profile, write_folded
    from repro.obs.spans import DISABLED, collect_trace

    if DISABLED:
        _LOG.warning(
            "REPRO_OBS_DISABLE is set; trace/profile outputs will be empty"
        )
    if trace_path:
        _preflight_output(trace_path, "trace")
    if profile_path:
        _preflight_output(profile_path, "profile")
    profiling = collect_profile() if profile_path else nullcontext(None)
    with collect_trace() as tracer, profiling as prof:
        status = run(args)
    if trace_path:
        from repro.obs.export import write_trace

        write_trace(tracer, trace_path)
        _LOG.info(
            "wrote trace to %s (%d spans, %d events)",
            trace_path,
            len(tracer.spans),
            len(tracer.events),
        )
    if profile_path:
        write_folded(tracer, profile_path)
        _LOG.info(
            "wrote folded stacks to %s (%d spans)",
            profile_path,
            len(tracer.spans),
        )
        # ``perf`` prints its own profile block from the report; for the
        # other subcommands the collected accounting surfaces here.
        if prof is not None and args.command != "perf" and (
            prof.kernels or prof.stage_rss or prof.bytes
        ):
            print(prof.render(), file=sys.stderr)
    return status


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    _configure_logging(-1 if args.log_quiet else args.verbose)
    handlers = {
        "generate": _cmd_generate,
        "compile": _cmd_compile,
        "schedule": _cmd_schedule,
        "simulate": _cmd_simulate,
        "explain": _cmd_explain,
        "flow": _cmd_flow,
        "faults": _cmd_faults,
        "dot": _cmd_dot,
        "archive": _cmd_archive,
        "experiment": _cmd_experiment,
        "perf": _cmd_perf,
        "diff": _cmd_diff,
        "watch": _cmd_watch,
    }
    try:
        return _run_observed(args, handlers[args.command])
    except (OSError, ValueError) as exc:
        # Covers missing/unreadable source files, ParseError/CycleError
        # (both ValueError subclasses), and domain validation errors --
        # a one-line diagnostic instead of a traceback, exit status 2.
        print(f"repro-sbm: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
