"""Command-line interface: ``python -m repro`` / ``repro-sbm``.

Subcommands mirror the pipeline stages:

``generate``    emit a random synthetic basic block (mini-language source)
``compile``     compile source (file or stdin) and print tuples + DAG
``schedule``    schedule source onto a barrier MIMD; print streams,
                embedding, barrier dag, sync fractions, quality report
``simulate``    schedule then execute under a duration sampler; print the
                trace and a Gantt chart
``flow``        schedule a structured program (if/while extension) and
                execute it dynamically with verified timing
``experiment``  run one of the paper's experiments (fig14..fig18,
                table1, ranges, merging, ablations, ...)

Examples::

    repro-sbm generate --statements 20 --variables 8 --seed 7
    repro-sbm generate -s 30 | repro-sbm schedule --pes 8
    repro-sbm simulate --pes 4 --runs 3 examples/block.src
    repro-sbm experiment fig15 --count 30
"""

from __future__ import annotations

import argparse
import sys

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments import (
    ablation_lookahead,
    barrier_cost_experiment,
    flow_overhead_experiment,
    kernel_suite_experiment,
    sync_elimination_experiment,
    ablation_ordering,
    ablation_round_robin,
    ablation_timing_variation,
    figure14_scatter,
    figure15_statements,
    figure16_variables,
    figure17_processors,
    figure18_vliw,
    merging_experiment,
    optimal_vs_conservative,
    overall_ranges,
    secondary_effect,
    table1_instruction_mix,
)
from repro.ir import compile_source, generate_tuples, optimize, parse_block
from repro.ir.dag import InstructionDAG
from repro.machine.durations import BimodalSampler, MaxSampler, MinSampler, UniformSampler
from repro.machine.program import MachineProgram
from repro.machine.dbm import simulate_dbm
from repro.machine.sbm import simulate_sbm
from repro.synth.generator import GeneratorConfig, generate_block
from repro.viz import render_barrier_dag, render_embedding, render_gantt

__all__ = ["main"]

_EXPERIMENTS = {
    "table1": lambda args: table1_instruction_mix(),
    "fig14": lambda args: figure14_scatter(count=args.count),
    "fig15": lambda args: figure15_statements(count=args.count),
    "fig16": lambda args: figure16_variables(count=args.count),
    "fig17": lambda args: figure17_processors(count=args.count),
    "fig18": lambda args: figure18_vliw(count=args.count),
    "ranges": lambda args: overall_ranges(count_per_point=max(4, args.count // 4)),
    "merging": lambda args: merging_experiment(count=args.count),
    "roundrobin": lambda args: ablation_round_robin(count=args.count),
    "ordering": lambda args: ablation_ordering(count=args.count),
    "lookahead": lambda args: ablation_lookahead(count=args.count),
    "timing": lambda args: ablation_timing_variation(count=args.count),
    "secondary": lambda args: secondary_effect(count=args.count),
    "optimal": lambda args: optimal_vs_conservative(count=args.count),
    "barriercost": lambda args: barrier_cost_experiment(count=args.count),
    "flowoverhead": lambda args: flow_overhead_experiment(count=args.count),
    "kernels": lambda args: kernel_suite_experiment(synthetic_count=args.count),
    "syncelim": lambda args: sync_elimination_experiment(count=args.count),
}

_SAMPLERS = {
    "uniform": UniformSampler,
    "min": MinSampler,
    "max": MaxSampler,
    "bimodal": BimodalSampler,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sbm",
        description="Static scheduling for barrier MIMD architectures "
        "(Zaafrani, Dietz, O'Keefe 1990) -- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit a random synthetic basic block")
    gen.add_argument("--statements", "-s", type=int, default=20)
    gen.add_argument("--variables", "-v", type=int, default=8)
    gen.add_argument("--constants", "-c", type=int, default=4)
    gen.add_argument("--seed", type=int, default=0)

    comp = sub.add_parser("compile", help="compile source to tuples and a DAG")
    comp.add_argument("source", nargs="?", help="source file (default: stdin)")
    comp.add_argument("--no-optimize", action="store_true")

    sched = sub.add_parser("schedule", help="schedule a basic block")
    _add_schedule_args(sched)

    sim = sub.add_parser("simulate", help="schedule and execute a basic block")
    _add_schedule_args(sim)
    sim.add_argument("--runs", type=int, default=1)
    sim.add_argument("--sampler", choices=sorted(_SAMPLERS), default="uniform")
    sim.add_argument("--sim-seed", type=int, default=0)

    flow = sub.add_parser(
        "flow", help="schedule and run a structured (if/while) program"
    )
    flow.add_argument("source", nargs="?", help="source file (default: stdin)")
    flow.add_argument("--pes", "-p", type=int, default=4)
    flow.add_argument("--machine", choices=("sbm", "dbm"), default="sbm")
    flow.add_argument("--seed", type=int, default=0)
    flow.add_argument(
        "--input",
        "-i",
        action="append",
        default=[],
        metavar="VAR=INT",
        help="initial variable binding (repeatable)",
    )
    flow.add_argument("--runs", type=int, default=1)

    dot = sub.add_parser(
        "dot", help="emit Graphviz DOT for a block's DAG and barrier dag"
    )
    dot.add_argument("source", nargs="?", help="source file (default: stdin)")
    dot.add_argument("--pes", "-p", type=int, default=8)
    dot.add_argument("--seed", type=int, default=0)
    dot.add_argument(
        "--what",
        choices=("dag", "barriers", "both"),
        default="both",
        help="which graph(s) to emit",
    )

    arch = sub.add_parser(
        "archive", help="schedule a corpus and write per-benchmark JSONL records"
    )
    arch.add_argument("output", help="JSONL file to write")
    arch.add_argument("--statements", "-s", type=int, default=60)
    arch.add_argument("--variables", "-v", type=int, default=10)
    arch.add_argument("--pes", "-p", type=int, default=8)
    arch.add_argument("--count", type=int, default=100)
    arch.add_argument("--seed", type=int, default=0)

    exp = sub.add_parser("experiment", help="run one of the paper's experiments")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--count", type=int, default=50, help="benchmarks per point")

    return parser


def _add_schedule_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("source", nargs="?", help="source file (default: stdin)")
    p.add_argument("--pes", "-p", type=int, default=8)
    p.add_argument("--machine", choices=("sbm", "dbm"), default="sbm")
    p.add_argument("--insertion", choices=("conservative", "optimal"), default="conservative")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-optimize", action="store_true")
    p.add_argument("--quiet", "-q", action="store_true", help="fractions only")


def _read_source(path: str | None) -> str:
    if path is None or path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_generate(args) -> int:
    config = GeneratorConfig(
        n_statements=args.statements,
        n_variables=args.variables,
        n_constants=args.constants,
    )
    block = generate_block(config, args.seed)
    print(block.source())
    return 0


def _cmd_compile(args) -> int:
    block = parse_block(_read_source(args.source))
    program = generate_tuples(block)
    print("== raw tuples ==")
    print(program.render())
    if not args.no_optimize:
        program = optimize(program)
        print("\n== optimized tuples ==")
        print(program.render())
    dag = InstructionDAG.from_program(program)
    print("\n== instruction DAG ==")
    print(dag.render())
    print(
        f"\n{len(program)} instructions, {dag.implied_synchronizations} implied "
        f"synchronizations, critical path {dag.critical_path()}"
    )
    return 0


def _schedule_from_args(args):
    dag = compile_source(
        _read_source(args.source), run_optimizer=not args.no_optimize
    )
    config = SchedulerConfig(
        n_pes=args.pes,
        machine=args.machine,
        insertion=args.insertion,
        seed=args.seed,
    )
    return dag, schedule_dag(dag, config)


def _cmd_schedule(args) -> int:
    from repro.analysis import analyze_schedule

    _, result = _schedule_from_args(args)
    if not args.quiet:
        print("== barrier embedding ==")
        print(render_embedding(result.schedule))
        print("\n== barrier dag ==")
        print(render_barrier_dag(result.schedule))
        print()
    print(result.describe())
    print(analyze_schedule(result).render())
    return 0


def _cmd_flow(args) -> int:
    from repro.flow import execute_flow_schedule, parse_program, schedule_program

    program = parse_program(_read_source(args.source))
    env: dict[str, int] = {}
    for binding in args.input:
        name, _, value = binding.partition("=")
        if not name or not value.lstrip("-").isdigit():
            raise SystemExit(f"bad --input {binding!r}; expected VAR=INT")
        env[name.strip()] = int(value)
    config = SchedulerConfig(n_pes=args.pes, machine=args.machine, seed=args.seed)
    flow = schedule_program(program, config)
    print(flow.cfg.render())
    print()
    print(flow.describe())
    for run in range(args.runs):
        trace = execute_flow_schedule(flow, env, rng=args.seed + run)
        bound = flow.static_path_bound(trace.block_sequence)
        print(f"\nrun {run}: {trace.describe()}")
        print(f"  path bound {bound}; final state:")
        for name, value in sorted(trace.final_state().items()):
            print(f"    {name} = {value}")
    return 0


def _cmd_simulate(args) -> int:
    _, result = _schedule_from_args(args)
    program = MachineProgram.from_schedule(result.schedule)
    sim = simulate_sbm if args.machine == "sbm" else simulate_dbm
    sampler = _SAMPLERS[args.sampler]()
    for run in range(args.runs):
        trace = sim(program, sampler, rng=args.sim_seed + run)
        trace.assert_sound(program.edges)
        if not args.quiet:
            print(f"== run {run} ==")
            print(render_gantt(program, trace))
            print()
        else:
            print(trace.describe())
    print(result.describe())
    print(f"static makespan bound {result.makespan}")
    return 0


def _cmd_dot(args) -> int:
    from repro.viz.dot import barrier_dag_to_dot, instruction_dag_to_dot

    dag = compile_source(_read_source(args.source))
    if args.what in ("dag", "both"):
        print(instruction_dag_to_dot(dag))
    if args.what in ("barriers", "both"):
        result = schedule_dag(dag, SchedulerConfig(n_pes=args.pes, seed=args.seed))
        print(barrier_dag_to_dot(result.schedule))
    return 0


def _cmd_archive(args) -> int:
    from repro.experiments.archive import archive_corpus, stats_from_archive
    from repro.experiments.sweeps import ExperimentPoint

    point = ExperimentPoint(
        generator=GeneratorConfig(
            n_statements=args.statements, n_variables=args.variables
        ),
        scheduler=SchedulerConfig(n_pes=args.pes),
        count=args.count,
        master_seed=args.seed,
    )
    written = archive_corpus(point, args.output)
    print(f"wrote {written} records to {args.output}")
    print(stats_from_archive(args.output).render())
    return 0


def _cmd_experiment(args) -> int:
    result = _EXPERIMENTS[args.name](args)
    print(result.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "compile": _cmd_compile,
        "schedule": _cmd_schedule,
        "simulate": _cmd_simulate,
        "flow": _cmd_flow,
        "dot": _cmd_dot,
        "archive": _cmd_archive,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
