"""Hybrid static/dynamic scheduling (see :mod:`repro.hybrid.plan`).

Compiler side: :func:`hybridize_schedule` classifies timing-proved edges
against an ε budget and demotes the fragile ones to dynamic data guards;
:func:`hybrid_program` lowers the (unchanged) schedule with the guard
table attached.  Runtime side: :class:`HybridController` executes static
barriers natively while the engine resolves guards under a
timeout/bounded-retry watchdog (:class:`~repro.machine.engine.GuardPolicy`).
"""

from repro.hybrid.controller import HybridController
from repro.hybrid.plan import (
    EdgeDemotion,
    HybridPlan,
    hybrid_program,
    hybridize_schedule,
)

__all__ = [
    "EdgeDemotion",
    "HybridController",
    "HybridPlan",
    "hybrid_program",
    "hybridize_schedule",
]
