"""The hybrid runtime: static barriers plus dynamic guard resolution.

A :class:`HybridController` implements the
:class:`~repro.machine.engine.BarrierController` protocol by delegating
barrier selection to the machine's native controller (SBM FIFO or DBM
associative) -- static barriers execute exactly as they would on the
pure-static machine.  What it adds is the *guard policy*: the watchdog
parameters the engine applies when it resolves the program's demoted
edges (``MachineProgram.guards``) dynamically, and the fault-plan
context stamped onto any :class:`~repro.machine.trace.GuardStall` or
:class:`~repro.machine.trace.DeadlockError` so campaign failures are
self-describing.

Diagnostics mirror ``SBMController.pending``: :meth:`pending` names the
queue head the inner controller is stuck on, and the engine's deadlock
message additionally lists guard-blocked consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.dbm import DBMController
from repro.machine.engine import GuardPolicy
from repro.machine.program import MachineProgram
from repro.machine.sbm import SBMController

__all__ = ["HybridController"]


@dataclass
class HybridController:
    """Wrap a machine controller with hybrid guard semantics."""

    inner: object  # BarrierController protocol
    guard_policy: GuardPolicy = field(default_factory=GuardPolicy)
    #: Active fault-plan summary ("" outside injection campaigns).
    fault_context: str = ""

    @staticmethod
    def for_program(
        program: MachineProgram,
        machine: str,
        guard_policy: GuardPolicy | None = None,
        fault_context: str = "",
    ) -> "HybridController":
        """Build the native controller for ``machine`` and wrap it."""
        if machine == "sbm":
            inner = SBMController(program)
        elif machine == "dbm":
            inner = DBMController(program)
        else:
            raise ValueError(
                f"unknown machine {machine!r} (expected 'sbm' or 'dbm')"
            )
        return HybridController(
            inner=inner,
            guard_policy=guard_policy or GuardPolicy(),
            fault_context=fault_context,
        )

    def select(
        self, waiting: dict[int, int], arrival: dict[int, int]
    ) -> tuple[int, int] | None:
        return self.inner.select(waiting, arrival)

    def pending(self) -> int | None:
        pending = getattr(self.inner, "pending", None)
        return pending() if callable(pending) else None
