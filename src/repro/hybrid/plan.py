"""Hybrid static/dynamic scheduling: demote fragile timing proofs.

The paper's compiler discharges cross-processor orderings three ways --
program order, barrier chains, or the step [2]-[5] timing inequality.
The first two are enforced by hardware at runtime; only the third rests
entirely on the ``[min,max]`` latency intervals holding.  PR 1's fault
campaigns showed exactly which timing proofs shatter first under
ε-inflation: the ones whose slack is a small fraction of the producer's
worst-case path.

ε-hardening (:func:`repro.faults.harden.harden_schedule`) answers with
*more barriers everywhere the inflated model fails* -- robust, but the
whole schedule pays.  The hybrid scheduler takes the middle road of
hybrid static/dynamic schedules (Jimborean et al., arXiv:1610.07236):
keep the statically-proven skeleton, and demote only the *fragile*
timing edges to dynamic data guards resolved at runtime:

* an edge whose proven tolerance ``epsilon_edge = slack / T_max(g)``
  meets the ε budget is **proven-robust** -- left purely static;
* an edge below the budget is **fragile** -- the static order is kept
  (placement and barriers do not change), but the consumer additionally
  *waits for data*: a DBM-style associative guard the engine resolves
  dynamically (:mod:`repro.machine.engine`), with a timeout/bounded-retry
  watchdog so an overrun becomes a recovered wait or a reported
  :class:`~repro.machine.trace.GuardStall` instead of a silent race.

Because the schedule itself is untouched, a hybrid compile with a zero
budget (or zero injected faults at runtime) is *digest-identical* to the
static one -- the guard table is pure insurance.  Every demotion is
recorded as provenance (:class:`~repro.obs.provenance.DemotionDecision`)
so ``repro-sbm explain`` can say why each edge was demoted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.faults.margin import MarginReport, robustness_margin
from repro.ir.dag import NodeId
from repro.machine.program import MachineProgram
from repro.obs.provenance import DemotionDecision, record_demotion

__all__ = ["EdgeDemotion", "HybridPlan", "hybridize_schedule", "hybrid_program"]


@dataclass(frozen=True, slots=True)
class EdgeDemotion:
    """One fragile timing edge demoted to a dynamic data guard."""

    producer: NodeId
    consumer: NodeId
    kind: str  # "timing" | "timing-optimal"
    slack: int
    t_max_producer: int
    epsilon_edge: float
    budget: float

    def describe(self) -> str:
        eps = (
            "inf" if math.isinf(self.epsilon_edge) else f"{self.epsilon_edge:.3f}"
        )
        return (
            f"{self.producer!s} -> {self.consumer!s}: {self.kind} proof "
            f"tolerates eps {eps} < budget {self.budget:g} "
            f"(slack {self.slack} over T_max {self.t_max_producer}) "
            f"-> dynamic guard"
        )


@dataclass(frozen=True)
class HybridPlan:
    """Which edges a hybrid compile trusts statically vs guards dynamically."""

    budget: float
    demotions: tuple[EdgeDemotion, ...]
    #: Timing-proved edges examined (demoted + proven-robust).
    n_timing: int
    #: Serialized / path / barrier edges (structurally robust, untouched).
    n_structural: int

    @property
    def n_demoted(self) -> int:
        return len(self.demotions)

    @property
    def n_proven(self) -> int:
        """Timing edges whose slack meets the budget -- left purely static."""
        return self.n_timing - self.n_demoted

    @property
    def guards(self) -> dict[NodeId, tuple[NodeId, ...]]:
        """The engine-facing wait-for-data table: consumer -> producers."""
        by_consumer: dict[NodeId, list[NodeId]] = {}
        for d in self.demotions:
            by_consumer.setdefault(d.consumer, []).append(d.producer)
        return {
            consumer: tuple(sorted(producers, key=str))
            for consumer, producers in by_consumer.items()
        }

    def describe(self) -> str:
        return (
            f"hybrid plan (budget eps={self.budget:g}): "
            f"{self.n_timing} timing edges = {self.n_proven} proven-robust "
            f"+ {self.n_demoted} demoted to guards; "
            f"{self.n_structural} structural edges untouched"
        )

    def render(self, limit: int = 8) -> str:
        lines = [self.describe()]
        for d in self.demotions[:limit]:
            lines.append(f"  {d.describe()}")
        if self.n_demoted > limit:
            lines.append(f"  ... and {self.n_demoted - limit} more demotions")
        return "\n".join(lines)


def hybridize_schedule(
    schedule: Schedule,
    budget: float,
    mode: str = "conservative",
    margin: MarginReport | None = None,
) -> HybridPlan:
    """Classify every timing-proved edge of a finished schedule.

    ``budget`` is the uniform multiplicative overrun (ε) the hybrid
    schedule must survive.  Edges whose
    :attr:`~repro.faults.margin.EdgeMargin.epsilon_edge` is at least the
    budget keep their pure-static discharge; the rest are demoted to
    dynamic guards.  A zero budget demotes nothing -- hybrid mode then
    degenerates to static scheduling, which the parity tests pin.

    The schedule is never modified: placement, stream order, and barrier
    structure stay exactly as compiled, so makespan under the static
    model is unchanged (guards only cost time when a fault actually
    delays a producer).
    """
    if budget < 0:
        raise ValueError("hybrid epsilon budget must be >= 0")
    report = margin if margin is not None else robustness_margin(schedule, mode)
    demotions: list[EdgeDemotion] = []
    if budget > 0:
        for edge in report.edges:
            if edge.epsilon_edge >= budget:
                continue
            demotion = EdgeDemotion(
                producer=edge.producer,
                consumer=edge.consumer,
                kind=edge.kind,
                slack=edge.slack,
                t_max_producer=edge.t_max_producer,
                epsilon_edge=edge.epsilon_edge,
                budget=budget,
            )
            demotions.append(demotion)
            record_demotion(
                DemotionDecision(
                    producer=demotion.producer,
                    consumer=demotion.consumer,
                    kind=demotion.kind,
                    slack=demotion.slack,
                    t_max_producer=demotion.t_max_producer,
                    epsilon_edge=demotion.epsilon_edge,
                    budget=budget,
                )
            )
    demotions.sort(key=lambda d: (d.epsilon_edge, d.slack, str(d.producer)))
    return HybridPlan(
        budget=budget,
        demotions=tuple(demotions),
        n_timing=report.n_timing,
        n_structural=report.n_structural,
    )


def hybrid_program(schedule: Schedule, plan: HybridPlan) -> MachineProgram:
    """Lower a schedule with the plan's guard table attached.

    The streams, masks, and queue order are byte-for-byte what
    :meth:`MachineProgram.from_schedule` produces for the static
    schedule; only the ``guards`` table is added.
    """
    return MachineProgram.from_schedule(schedule, guards=plan.guards)
