"""E14 -- Section 4.4.2: conservative vs "optimal" barrier insertion.

Paper: the optimal algorithm never inserts a barrier unless absolutely
necessary (it accounts for overlap between the producer's max-paths and
the consumer's min-path, figure 13); the conservative algorithm was used
for all the paper's experiments "because [it] is much simpler and the
results were very good" -- i.e. the difference is small.
"""

from repro.experiments import optimal_vs_conservative

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_optimal_vs_conservative(benchmark, show):
    result = run_once(
        benchmark, lambda: optimal_vs_conservative(count=BENCH_COUNT)
    )
    show("E14 / Section 4.4.2: conservative vs optimal insertion", result.render())

    # optimal never needs more barriers (tiny tolerance for random
    # tie-break divergence after the first differing insertion)
    assert (
        result.mean_barriers_optimal
        <= result.mean_barriers_conservative + 0.25
    )
    # and the difference is small, justifying the paper's choice
    assert (
        result.mean_barriers_conservative - result.mean_barriers_optimal
        <= 0.15 * result.mean_barriers_conservative + 0.5
    )
