"""E16 (extension) -- control-flow scheduling overhead.

The paper's section 7 lists "extension of the basic scheduling
techniques to more complex code structures (including arbitrary control
flow)" as ongoing work.  The :mod:`repro.flow` extension implements the
conservative block-boundary discipline; this bench quantifies its cost:
how much of the runtime synchronization is block-boundary barriers, and
how far measured executions sit inside the compile-time path bounds.
Every execution in the corpus is also value-checked against the
reference interpreter.
"""

from repro.experiments import flow_overhead_experiment

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_flow_overhead(benchmark, show):
    result = run_once(
        benchmark, lambda: flow_overhead_experiment(count=max(20, BENCH_COUNT // 2))
    )
    show("E16 / extension: control-flow scheduling overhead", result.render())

    assert result.value_mismatches == 0, "end-to-end value corruption"
    assert result.mean_total_time <= result.mean_path_bound_hi
    # short random blocks make boundary barriers a large share -- the
    # quantitative motivation for smarter inter-block scheduling
    assert 0.10 <= result.mean_boundary_share <= 0.9
