"""Extension ablation -- the serialization-slack knob (not in the paper).

``SchedulerConfig.serialization_slack`` lets step [2] keep a node on a
producer's processor when its estimated start is within ``slack`` time
units of the global earliest start.  This trades a slightly longer
worst-case makespan for noticeably fewer barriers; slack 2..4 lands the
figure 14 "serialized + static" center of mass closest to the paper's
~85% (see EXPERIMENTS.md).  Slack 0 is the paper's exact rule and the
library default.
"""

import numpy as np

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments.render import table
from repro.metrics.fractions import fractions_of
from repro.synth.corpus import generate_cases
from repro.synth.generator import GeneratorConfig

from benchmarks.conftest import BENCH_COUNT, run_once


def run_slack_sweep(count):
    gen = GeneratorConfig(n_statements=60, n_variables=10)
    cases = list(generate_cases(gen, count, master_seed=99))
    rows = []
    summary = {}
    for slack in (0, 2, 4, 8):
        barrier, serialized, no_rt, tmax = [], [], [], []
        for case in cases:
            result = schedule_dag(
                case.dag,
                SchedulerConfig(
                    n_pes=8, seed=case.seed & 0xFFFFFFFF, serialization_slack=slack
                ),
            )
            fr = fractions_of(result)
            barrier.append(fr.barrier)
            serialized.append(fr.serialized)
            no_rt.append(fr.no_runtime_sync)
            tmax.append(result.makespan.hi)
        rows.append(
            [
                slack,
                f"{np.mean(barrier):.1%}",
                f"{np.mean(serialized):.1%}",
                f"{np.mean(no_rt):.1%}",
                f"{np.mean(tmax):.1f}",
            ]
        )
        summary[slack] = (np.mean(barrier), np.mean(no_rt), np.mean(tmax))
    text = table(["slack", "barrier", "serialized", "no-rt-sync", "Tmax"], rows)
    return summary, text


def test_bench_serialization_slack(benchmark, show):
    summary, text = run_once(benchmark, lambda: run_slack_sweep(BENCH_COUNT))
    show("EXT / serialization-slack ablation (60 stmts, 10 vars, 8 PEs)", text)

    # more slack -> fewer barriers, at bounded makespan cost
    assert summary[4][0] < summary[0][0]
    assert summary[8][2] <= 1.2 * summary[0][2]
