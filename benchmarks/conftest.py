"""Shared configuration for the benchmark/reproduction harness.

Every file in this directory regenerates one table or figure of the
paper (see the experiment index in DESIGN.md).  Each test

* runs the experiment once under ``benchmark.pedantic`` (so
  ``--benchmark-only`` measures the end-to-end cost of reproducing the
  artifact), and
* prints the reproduced rows/series straight to the terminal (bypassing
  capture), annotated with the paper's reported values.

Corpus sizes default to :data:`BENCH_COUNT` benchmarks per parameter
point (the paper uses 100; the shapes are stable well below that).  Set
``REPRO_BENCH_COUNT=100`` in the environment for full paper-scale runs;
at that scale the corpus drivers fan out over all cores by default
(``REPRO_JOBS=0``; export ``REPRO_JOBS`` yourself to pin a worker count
or force serial with ``REPRO_JOBS=1``).  Parallel results are
bit-identical to serial -- see docs/performance.md.

The compute backend follows ``REPRO_BACKEND`` (python / numpy / auto,
see :mod:`repro.kernels`); it is validated once here so a typo fails
the whole session immediately instead of erroring 50 corpora in, and
pinned into the environment so the parallel workers and any
subprocesses observe the same setting.
"""

from __future__ import annotations

import os

import pytest

from repro import kernels

#: Benchmarks per parameter point (paper: 100).
BENCH_COUNT = int(os.environ.get("REPRO_BENCH_COUNT", "50"))

#: Full-paper-scale runs are exactly when parallelism pays for the pool
#: startup; smaller runs keep the serial default.
if BENCH_COUNT >= 100:
    os.environ.setdefault("REPRO_JOBS", "0")  # 0 = all cores

#: Validate and pin the kernel backend for the whole session (workers
#: re-pin from the shipped payload; see repro.perf.parallel).
os.environ["REPRO_BACKEND"] = kernels.backend_setting()


@pytest.fixture
def show(capfd):
    """Print a result block to the real stdout, bypassing pytest capture."""
    import sys

    def _show(title: str, body: str) -> None:
        with capfd.disabled():
            sys.stdout.write(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")
            sys.stdout.flush()

    return _show


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
