"""E15 (extension) -- cost of non-ideal barrier hardware.

The paper's experiments assume barriers "execute immediately upon
arrival of the last participating processor" (section 5); the [OKDi90]
companion paper studies the hardware that makes that nearly true.  This
bench sweeps the release latency the compiler budgets per barrier and
reports the makespan growth and the (slightly falling) barrier fraction.
"""

from repro.experiments import barrier_cost_experiment

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_barrier_cost(benchmark, show):
    result = run_once(benchmark, lambda: barrier_cost_experiment(count=BENCH_COUNT))
    show("E15 / extension: barrier hardware cost", result.render())

    # makespan grows monotonically with the latency
    assert list(result.mean_makespan_max) == sorted(result.mean_makespan_max)
    # at latency 0 we are at the paper's numbers; at 8 the machine is
    # clearly slower but still functional
    assert result.mean_makespan_max[-1] > result.mean_makespan_max[0]
    # the *fraction* of barriers does not explode with cost
    assert max(result.barrier_fraction) - min(result.barrier_fraction) < 0.10
