"""E20 -- hybrid extension: static vs ε-hardened vs hybrid study.

Not a figure from the paper: it closes the robustness arc opened by E19.
Where E19 priced the two extremes -- trust every timing proof (static)
or re-prove everything against the inflated model (ε-hardening) -- this
study measures the middle road of :mod:`repro.hybrid`: keep the static
skeleton, demote only the fragile timing edges to runtime data guards,
and pay for synchronization only on the runs where a fault actually
lands.

Expected shape: at eps = 0 all three strategies tie at 100% survival
and zero overhead (the parity contract).  As ε grows, static survival
falls while hybrid stays at (or near) 100% via recovered guard waits;
hybrid's observed makespan overhead stays below ε-hardening's at the
highest fault level because guards charge only faulted runs while
hardening's extra barriers bill every run.
"""

from repro.experiments import hybrid_experiment

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_hybrid(benchmark, show):
    result = run_once(
        benchmark,
        lambda: hybrid_experiment(count=max(4, BENCH_COUNT // 4), runs=12),
    )
    show(
        "E20 / extension: static vs hardened vs hybrid (8 vars, 30 stmts)",
        result.render(),
    )

    baseline = result.points[0]
    assert baseline.epsilon == 0.0 and baseline.n_stragglers == 0
    assert baseline.survival_static == 1.0, "eps=0 must reproduce soundness"
    assert baseline.survival_hybrid == 1.0
    assert baseline.overhead_hybrid == 0.0, "guards must be free without faults"

    for point in result.points:
        # Hybrid must never fall below pure-static survival, and races it
        # prevents show up as recovered guard waits, not deadlocks.
        assert point.survival_hybrid >= point.survival_static
        assert point.deadlocks == 0
        assert point.survival_hardened == 1.0

    faulted = [p for p in result.points if p.epsilon > 0]
    assert any(
        p.survival_hybrid > p.survival_static for p in faulted
    ), "the sweep never exercised a fragile proof -- corpus too easy"

    worst = result.points[-1]
    assert worst.overhead_hybrid <= worst.overhead_hardened, (
        "hybrid must undercut hardening's price at the highest fault level"
    )
