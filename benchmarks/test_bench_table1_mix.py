"""E1 -- Table 1: instruction frequencies and execution time ranges.

Paper: Add 45.8%, Sub 33.9%, And 8.8%, Or 5.2%, Mul 2.9%, Div 2.2%,
Mod 1.2%; Load [1,4], Store/Add/Sub/And/Or [1,1], Mul [16,24],
Div/Mod [24,32].
"""

from repro.experiments import table1_instruction_mix

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_table1_instruction_mix(benchmark, show):
    result = run_once(
        benchmark, lambda: table1_instruction_mix(n_blocks=max(100, BENCH_COUNT * 4))
    )
    show("E1 / Table 1: instruction mix and latencies", result.render())
    assert result.max_abs_deviation < 0.02
