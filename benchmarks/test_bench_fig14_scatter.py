"""E2 -- Figure 14: scatter of serialized vs statically scheduled fractions.

Paper: benchmarks with 65..132 implied synchronizations; the center of
mass of the point cloud lies near the 85% line -- about 85% of all
synchronizations are either serialized or statically scheduled away
(and, per the abstract, more than 77% need no runtime synchronization).
"""

from repro.experiments import figure14_scatter

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_fig14_scatter(benchmark, show):
    result = run_once(
        benchmark, lambda: figure14_scatter(count=max(60, BENCH_COUNT * 2))
    )
    show("E2 / Figure 14: serialized vs static scatter", result.render())
    # the abstract's headline claim
    assert result.center_no_runtime > 0.77
