"""E11 -- Section 5.4: serialization-lookahead ablation.

Paper: with a window of size p over the list, the serialization fraction
increased as expected (not by much at large processor counts); for small
processor counts execution time increased 10%..30% from the longer
serial chains, the increase disappearing at large processor counts.
"""

from repro.experiments import ablation_lookahead

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_ablation_lookahead(benchmark, show):
    result = run_once(benchmark, lambda: ablation_lookahead(count=BENCH_COUNT))
    show("E11 / Section 5.4: lookahead ablation (p=4)", result.render())

    # serialization rises somewhere along the sweep
    gains = [
        v.serialized.mean - b.serialized.mean
        for b, v in zip(result.baseline, result.variant)
    ]
    assert max(gains) > -0.02
    # at the largest PE count, the execution-time penalty is small
    base, variant = result.baseline[-1], result.variant[-1]
    assert variant.mean_makespan_max <= 1.25 * base.mean_makespan_max
