"""E4 -- Figure 16: sync fractions vs number of variables.

Fixed: 8 processors, 60 statements; variables 2..15.  Paper: the barrier
fraction first increases with the parallelism width, then remains
constant once the width exceeds the processor count; the serialization
fraction decreases as more variables are used.
"""

from repro.experiments import figure16_variables

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_fig16_variables(benchmark, show):
    result = run_once(benchmark, lambda: figure16_variables(count=BENCH_COUNT))
    show("E4 / Figure 16: fractions vs variables (8 PEs, 60 stmts)", result.render())

    barrier = [s.barrier.mean for s in result.stats]
    serialized = [s.serialized.mean for s in result.stats]
    assert barrier[0] < barrier[-1], "barrier fraction rises with width"
    assert serialized[0] > serialized[-1], "serialization falls with width"
    # plateau: last two variable counts close
    assert abs(barrier[-1] - barrier[-2]) < 0.06
