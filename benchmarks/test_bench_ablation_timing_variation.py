"""E12 -- Section 5.4: instruction timing-variation sensitivity.

Paper: "the barrier sync fraction was not very sensitive to increases in
instruction timing variation, increasing only slightly for large
variations."  We scale every instruction's [min,max] width by factors
0x..8x and watch the barrier fraction.
"""

from repro.experiments import ablation_timing_variation

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_ablation_timing_variation(benchmark, show):
    result = run_once(
        benchmark, lambda: ablation_timing_variation(count=BENCH_COUNT)
    )
    show("E12 / Section 5.4: timing-variation ablation", result.render())

    spread = max(result.barrier_fraction) - min(result.barrier_fraction)
    assert spread < 0.15, "barrier fraction should be fairly insensitive"
    # zero variation -> perfect static knowledge -> fewest barriers
    assert result.barrier_fraction[0] <= min(result.barrier_fraction) + 0.02
