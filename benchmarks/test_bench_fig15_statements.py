"""E3 -- Figure 15: sync fractions vs number of statements.

Fixed: 8 processors, 15 variables; statements 5..60.  Paper: the barrier
fraction decreases as statements grow from 5 to 20 (the early Load
concentration dilutes), then flattens as Mul/Div/Mod appear; the
serialization fraction decreases with block size; the static fraction
grows.
"""

from repro.experiments import figure15_statements

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_fig15_statements(benchmark, show):
    result = run_once(benchmark, lambda: figure15_statements(count=BENCH_COUNT))
    show("E3 / Figure 15: fractions vs statements (8 PEs, 15 vars)", result.render())

    serialized = [s.serialized.mean for s in result.stats]
    static = [s.static.mean for s in result.stats]
    assert serialized[0] > serialized[-1], "serialization must fall with size"
    assert static[0] < static[-1], "static fraction must grow with size"
    for stats in result.stats:
        assert stats.barrier.mean <= 0.30
