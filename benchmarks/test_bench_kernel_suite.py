"""E17 (extension) -- real kernels vs synthetic benchmarks.

The paper argues its synthetic evaluation is "conservative" compared to
real code (section 2).  The curated kernel suite (FIR, matmul, Horner,
checksum, complex MAC, geometry, fixed-point, hash-mix) lets us test
that: hand-written kernels should land in the synthetic envelope, with
serial-chain kernels (Horner, hash-mix) serializing almost entirely and
parallel kernels (matmul, geometry) spreading across processors.
"""

from repro.experiments import kernel_suite_experiment

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_kernel_suite(benchmark, show):
    result = run_once(
        benchmark, lambda: kernel_suite_experiment(synthetic_count=BENCH_COUNT)
    )
    show("E17 / extension: real kernels vs synthetic", result.render())

    by_name = {row.name: row for row in result.rows}
    # serial chains: almost fully serialized, near-zero barriers, ~1x speedup
    assert by_name["horner5"].fractions.serialized >= 0.4
    assert by_name["hashmix"].fractions.barrier <= 0.10
    assert by_name["hashmix"].worst_case_speedup <= 1.3
    # parallel kernels actually use the machine
    assert by_name["matmul2"].worst_case_speedup >= 2.0
    assert by_name["geometry3"].worst_case_speedup >= 2.0
    # the suite as a whole sits in the synthetic envelope
    mean_barrier = sum(r.fractions.barrier for r in result.rows) / len(result.rows)
    assert abs(mean_barrier - result.synthetic_barrier) < 0.15
