"""E8 -- Section 4.4.3: SBM barrier merging.

Paper (10 variables, 80 statements): merging produced ~35% fewer
barriers; the static scheduling fraction increased as a result of the
larger barriers; merging increased SBM completion time relative to the
DBM, "although these times are quite close".
"""

from repro.experiments import merging_experiment

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_merging(benchmark, show):
    result = run_once(benchmark, lambda: merging_experiment(count=BENCH_COUNT))
    show("E8 / Section 4.4.3: barrier merging (10 vars, 80 stmts)", result.render())

    assert result.reduction > 0.15, "merging must remove a sizable share"
    assert result.static_merged > result.static_unmerged
    ratio = result.sbm_mean_completion / result.dbm_mean_completion
    assert 0.85 <= ratio <= 1.25, "SBM and DBM completion should be close"
