"""E5 -- Figure 17: sync fractions vs number of processors.

Fixed: 100 statements, 10 variables; processors 2..128.  Paper: the
barrier fraction increases while the processor count is below the
benchmark's parallelism width, then remains constant; the serialization
fraction stays nearly constant throughout.
"""

from repro.experiments import figure17_processors

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_fig17_processors(benchmark, show):
    result = run_once(benchmark, lambda: figure17_processors(count=BENCH_COUNT))
    show(
        "E5 / Figure 17: fractions vs processors (100 stmts, 10 vars)",
        result.render(),
    )

    barrier = [s.barrier.mean for s in result.stats]
    serialized = [s.serialized.mean for s in result.stats]
    assert barrier[0] < barrier[2], "barrier fraction rises while PEs < width"
    # constant once saturated: the last three machine sizes agree closely
    assert max(barrier[-3:]) - min(barrier[-3:]) < 0.05
    # serialization nearly constant (paper: two canceling effects)
    assert max(serialized) - min(serialized) < 0.25
