"""E18 (extension) -- conventional-MIMD synchronization removal.

The paper's section 7 proposes applying the barrier-MIMD timing
machinery to remove directed synchronizations in conventional MIMDs.
This bench compares, per block: naive directed syncs, Shaffer-style
transitive reduction (structure only), interval-timing elimination
(ours), both combined, and -- for context -- the barrier MIMD's own
barrier count.  Expected ordering: timing beats structure, combination
beats both, and the barrier MIMD beats everything (its barriers are
many-to-one).
"""

from repro.experiments import sync_elimination_experiment

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_sync_elimination(benchmark, show):
    result = run_once(
        benchmark, lambda: sync_elimination_experiment(count=BENCH_COUNT)
    )
    show("E18 / extension: conventional-MIMD sync removal", result.render())

    assert result.mean_structural < result.mean_naive
    assert result.mean_timing < result.mean_structural + 1.0
    assert result.mean_combined <= result.mean_timing
    assert result.mean_combined <= result.mean_structural
    assert result.mean_barriers < result.mean_combined
