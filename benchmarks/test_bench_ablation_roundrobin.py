"""E9 -- Section 5.4: round-robin assignment ablation.

Paper: with round-robin node assignment the serialization fraction
nearly vanishes for large numbers of processors; the barrier fraction
increases significantly, in some cases reaching 50%; both execution
times increase, with the gap to list scheduling narrowing at large
processor counts.
"""

from repro.experiments import ablation_round_robin

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_ablation_roundrobin(benchmark, show):
    result = run_once(benchmark, lambda: ablation_round_robin(count=BENCH_COUNT))
    show("E9 / Section 5.4: round-robin ablation", result.render())

    last_base = result.baseline[-1]
    last_rr = result.variant[-1]
    assert last_rr.serialized.mean < 0.12, "serialization nearly vanishes"
    assert last_rr.barrier.mean > 1.5 * last_base.barrier.mean
    assert last_rr.mean_makespan_max >= last_base.mean_makespan_max
