"""E19 -- robustness extension: fault-tolerance curve under ε-injection.

Not a figure from the paper: the paper assumes every instruction
finishes inside its static [min, max] latency interval.  This extension
measures what the timing proofs are worth when that assumption erodes --
the fraction of schedules whose timing-discharged edges actually race
under ε-inflated latencies, and how completely ε-hardening (re-running
barrier insertion against the inflated DAG) repairs them.

Expected shape: the eps = 0 row is race-free (soundness baseline), the
racy fraction grows with ε, and the hardened racy fraction is zero at
every ε -- at the price of extra barriers and a longer makespan.
"""

from repro.experiments import robustness_experiment

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_robustness(benchmark, show):
    result = run_once(
        benchmark,
        lambda: robustness_experiment(count=max(4, BENCH_COUNT // 4), runs=20),
    )
    show("E19 / extension: fault-tolerance curve (8 vars, 30 stmts)", result.render())

    baseline = result.points[0]
    assert baseline.epsilon == 0.0
    assert baseline.racy_fraction == 0.0, "eps=0 must reproduce paper soundness"
    assert baseline.covered_fraction == 1.0

    for point in result.points:
        assert point.racy_fraction_hardened == 0.0, "hardening must close every race"
        assert point.n_deadlocks == 0
        assert point.racy_fraction_hardened <= point.racy_fraction
