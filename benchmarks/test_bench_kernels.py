"""Micro-benchmarks of the pipeline kernels (throughput, not a figure).

These give pytest-benchmark real multi-round timing data for the hot
paths: compiling a benchmark, scheduling it, lowering it, and one
simulated execution.
"""

import random

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.ir import generate_tuples, optimize
from repro.ir.dag import InstructionDAG
from repro.machine.durations import UniformSampler
from repro.machine.program import MachineProgram
from repro.machine.sbm import simulate_sbm
from repro.machine.vliw import vliw_schedule
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig, generate_block

CFG = GeneratorConfig(n_statements=60, n_variables=10)


@pytest.fixture(scope="module")
def case():
    return compile_case(CFG, 4242)


@pytest.fixture(scope="module")
def scheduled(case):
    return schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=4242))


@pytest.fixture(scope="module")
def program(scheduled):
    return MachineProgram.from_schedule(scheduled.schedule)


def test_bench_kernel_generate_and_compile(benchmark):
    def compile_one():
        block = generate_block(CFG, random.Random(7))
        return optimize(generate_tuples(block))

    program = benchmark(compile_one)
    assert len(program) > 10


def test_bench_kernel_dag_construction(benchmark, case):
    dag = benchmark(InstructionDAG.from_program, case.program)
    assert dag.implied_synchronizations > 0


def test_bench_kernel_schedule(benchmark, case):
    result = benchmark(schedule_dag, case.dag, SchedulerConfig(n_pes=8, seed=1))
    assert result.counts.total_edges == case.implied_synchronizations


def test_bench_kernel_schedule_128_pes(benchmark, case):
    result = benchmark(schedule_dag, case.dag, SchedulerConfig(n_pes=128, seed=1))
    assert result.counts.repairs >= 0


def test_bench_kernel_lower_to_machine(benchmark, scheduled):
    program = benchmark(MachineProgram.from_schedule, scheduled.schedule)
    assert program.n_instructions > 0


def test_bench_kernel_simulate_sbm(benchmark, program):
    trace = benchmark(simulate_sbm, program, UniformSampler(), 3)
    assert trace.verify(program.edges) == []


def test_bench_kernel_vliw_schedule(benchmark, case):
    sched = benchmark(vliw_schedule, case.dag, 8)
    assert sched.makespan >= case.dag.critical_path().hi
