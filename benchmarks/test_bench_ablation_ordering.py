"""E10 -- Section 5.4: list-ordering ablation (h_min first).

Paper: sorting by minimum height first (maximum as tie-break) trades the
best case against the worst case -- the minimum execution time of the
benchmarks decreased while the maximum increased -- but "the changes
were quite small".
"""

from repro.experiments import ablation_ordering

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_ablation_ordering(benchmark, show):
    result = run_once(benchmark, lambda: ablation_ordering(count=BENCH_COUNT))
    show("E10 / Section 5.4: ordering ablation (h_min-first)", result.render())

    for base, variant in zip(result.baseline, result.variant):
        # quite small changes: worst-case makespans within 20% of each other
        assert abs(variant.mean_makespan_max - base.mean_makespan_max) <= (
            0.20 * base.mean_makespan_max
        )
        assert abs(variant.mean_makespan_min - base.mean_makespan_min) <= (
            0.20 * base.mean_makespan_min
        )
