"""E6 -- Figure 18: VLIW vs barrier architecture completion times.

Fixed: 60 statements, 10 variables; processors 2..128; times normalized
to VLIW execution (all instructions at maximum time, lock-step).  Paper:
the maximum times of barrier MIMD and VLIW are nearly identical (barrier
slightly longer at small processor counts, from barriers forced by
timing variation); the minimum barrier-MIMD completion time is about 25%
below the VLIW time; the VLIW schedule hits the critical path for almost
all benchmarks.
"""

from repro.experiments import figure18_vliw

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_fig18_vliw(benchmark, show):
    result = run_once(benchmark, lambda: figure18_vliw(count=BENCH_COUNT))
    show("E6 / Figure 18: VLIW vs barrier MIMD (60 stmts, 10 vars)", result.render())

    # max times nearly identical (within ~20% here; paper: "nearly identical")
    for ratio in result.barrier_max:
        assert 0.85 <= ratio <= 1.35
    # min completion well below VLIW once parallelism is available
    assert min(result.barrier_min) <= 0.85
    # VLIW optimal (== critical path) for almost all benchmarks -- once the
    # machine is wide enough to hold the block's parallelism (at 2 PEs no
    # schedule can reach the critical path, the total work doesn't fit)
    wide_enough = [
        frac
        for pes, frac in zip(result.x_values, result.vliw_optimal_fraction)
        if pes >= 8
    ]
    assert min(wide_enough) >= 0.9
