"""E13 -- Section 3 (figures 7/8): the secondary effect of barriers.

Paper: inserting a barrier for one producer/consumer pair tightens the
timing of later pairs, which "often (about 28% of the time in our
current studies) allows the compiler to avoid inserting further
barriers".  We measure resolutions that leaned on a previously inserted
barrier as a fraction of all would-be barrier insertions.
"""

from repro.experiments import secondary_effect

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_secondary_effect(benchmark, show):
    result = run_once(benchmark, lambda: secondary_effect(count=BENCH_COUNT * 2))
    show("E13 / Section 3: secondary effect (figures 7/8)", result.render())

    # the figure 7/8 mechanism (timing proofs leaning on an inserted
    # barrier) lands on the paper's number
    assert 0.18 <= result.timing_only_fraction <= 0.40
    # the broader measure including barrier-chain transitivity is larger
    assert result.broad_fraction >= result.timing_only_fraction
