"""E7 -- Section 5 headline ranges over the full parameter grid.

Paper (over 3500+ benchmarks): the barrier fraction varies from 3% to
23%; the serialization fraction from 50% to 90%; the statically
scheduled fraction from 8% to 40%; and "more than 77% of all
synchronizations ... will be accomplished without runtime
synchronization" (abstract), with the figure 14 center of mass near 85%.
"""

from repro.experiments import overall_ranges

from benchmarks.conftest import BENCH_COUNT, run_once


def test_bench_overall_ranges(benchmark, show):
    result = run_once(
        benchmark, lambda: overall_ranges(count_per_point=max(6, BENCH_COUNT // 4))
    )
    show("E7 / Section 5: overall fraction ranges", result.render())

    # ranges must straddle the paper's envelopes (degenerate tiny-block
    # points widen ours slightly at both ends)
    assert result.barrier_range[0] <= 0.08
    assert 0.15 <= result.barrier_range[1] <= 0.35
    assert result.serialized_range[1] >= 0.70
    assert result.static_range[1] >= 0.25
