"""Setup shim.

The normal `pip install -e .` path (PEP 660) requires the `wheel` package,
which is unavailable in fully offline environments; this shim lets pip fall
back to the legacy `setup.py develop` editable install there
(`pip install -e . --no-build-isolation --no-use-pep517`).
All project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
